"""Explicit-state model checker for the MESI + InvisiSpec protocol.

This is the offline half of the verification story (the runtime
sanitizer, docs/SANITIZER.md, is the online half): a Murphi-style
checker that exhaustively enumerates every reachable interleaving of a
small configuration (2-3 cores x 1-2 cache lines, bounded in-flight
messages) and checks safety properties on every state and transition.

Abstract transition system
--------------------------

The abstraction mirrors the *atomicity structure* of the live
simulator (``repro.coherence.hierarchy``): directory processing is
atomic with the request (the code runs ``_process`` /
``_transaction_steps`` synchronously at submit), while invalidation
deliveries, data fills, store performs, and Spec-GetS nacks are
asynchronous events.  Routing decisions are *not* re-implemented here:
every rule calls :func:`repro.coherence.protocol.route_request` and
:func:`repro.coherence.protocol.apply_l1_event`, so the checker and
the simulator share one set of tables.  The speculative transaction
phases are the abstract image of the USL lifecycle
(:mod:`repro.invisispec.lifecycle`): a ``spec`` transaction in phase
``filled`` sits at a pre-visibility vstate (E/V), and the
``visible``/``complete`` rules are the E/V -> C edge.

State components (all hashable tuples):

* ``l1[core][line]``   -- one of ``"MESI"``.
* ``l2[line]``         -- L2 residency (bool).
* ``dirs[line]``       -- ``(owner, sharers, wb)``; ``owner`` is -1 for
  none, ``sharers`` a sorted tuple, ``wb`` the write-back-window flag.
* ``llc[core][line]``  -- per-core LLC-SB entry: 0 absent, 1 fresh,
  2 stale.  The stale bit is *auxiliary checker state*: a performing
  store always marks other cores' entries stale; whether it also
  *purges* them is a protocol action (and is what the
  ``purge_llc_sb_disabled`` mutation removes).
* ``txns[core]``       -- at most one outstanding transaction per core
  (the bound that keeps the space finite): ``None``,
  ``("load", l)``, ``("valexp", l)``, ``("store", l, acks)`` or
  ``("spec", l, phase)`` with phase in ``fwd | data | datam | nack |
  filled``.
* ``invs``             -- sorted tuple of in-flight invalidations
  ``(dst, line, kind, origin)``; ``kind`` is ``"ack"`` (counted toward
  a store's ack set) or ``"cln"`` (fire-and-forget cleanup/recall).

Checked properties
------------------

State invariants (every reachable state):

* **SWMR** -- if any core holds a *live* writable copy (live = no
  invalidation in flight to it), no other core holds a live readable
  copy.
* **directory agreement** -- every live readable copy is tracked by
  the directory; every tracked core either holds the line, has an
  invalidation in flight, or has a non-speculative transaction in
  flight for it; a named owner never holds the line in S.
* **L2 inclusion** -- every live readable L1 copy is L2-resident.
* **progress / deadlock-freedom** -- every store transaction's
  outstanding ack count equals its in-flight ack invalidations (so the
  perform guard is eventually satisfiable), and every non-quiescent
  state has at least one successor.

Transition properties:

* **invisibility** -- every speculative rule (tagged ``spec``) leaves
  the observer-visible projection (l1, l2, directory, and *other*
  cores' LLC-SBs) unchanged; this is the executable form of the
  all-empty Spec-GetS rows of
  :data:`repro.coherence.protocol.VISIBLE_EFFECTS`.
* **perform-acks** -- a store may perform only with zero of its ack
  invalidations still in flight (write serialization).
* **fresh-validate** -- a validation/exposure never consumes a stale
  LLC-SB entry (Section VI-C's purge-on-visible-access requirement).

Two deliberate refinements over the live code, both in the fill path:
a data fill that arrives after the directory named *another* owner is
dropped (the code does this too), and a fill that arrives after its
line was recalled out of the L2 is also dropped, while a store perform
re-establishes L2 residency (write-allocate).  Without these, the
*unmodified* protocol has a reachable inclusion race between an
in-flight fill and a capacity recall -- a model-checking find that is
documented in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import permutations as _permutations

from ..coherence.mesi import MESIState
from ..coherence.protocol import (
    DirOutcome,
    apply_l1_event,
    L1Event,
    outcome_is_invisible,
    route_request,
)
from ..coherence.requests import RequestKind

_CHAR_TO_STATE = {
    "M": MESIState.MODIFIED,
    "E": MESIState.EXCLUSIVE,
    "S": MESIState.SHARED,
    "I": MESIState.INVALID,
}
_STATE_TO_CHAR = {v: k for k, v in _CHAR_TO_STATE.items()}

#: LLC-SB entry states.
_SB_ABSENT, _SB_FRESH, _SB_STALE = 0, 1, 2

#: Names of all seeded protocol mutations the checker knows how to
#: apply.  Kept here (rather than in :mod:`mutations`) so rule code and
#: registry can never drift apart.
MUTATION_NAMES = (
    "spec_mem_fills_l1",
    "spec_mem_fills_l2",
    "spec_mem_registers_sharer",
    "spec_l2_hit_registers_sharer",
    "spec_bounce_registers_sharer",
    "store_hit_treats_shared_writable",
    "fill_exclusive_despite_sharers",
    "owner_forward_skips_demote",
    "upgrade_drops_one_inv",
    "l2_store_ack_undercount",
    "perform_before_final_ack",
    "perform_skips_sharer_reassert",
    "l1_evict_keeps_directory_entry",
    "l2_evict_skips_recall",
    "purge_llc_sb_disabled",
    "flagged_load_uses_fast_path",
    "spec_retry_goes_visible",
)


class Violation:
    """One property violation plus the shortest trace reaching it."""

    __slots__ = ("prop", "detail", "trace")

    def __init__(self, prop, detail, trace=None):
        self.prop = prop
        self.detail = detail
        self.trace = trace or []

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Violation({self.prop}: {self.detail}, {len(self.trace)} steps)"


class CheckResult:
    """Outcome of one exhaustive run."""

    __slots__ = (
        "cores",
        "lines",
        "mutation",
        "states",
        "transitions",
        "violation",
        "elapsed",
        "complete",
    )

    def __init__(self, cores, lines, mutation, states, transitions, violation, elapsed, complete):
        self.cores = cores
        self.lines = lines
        self.mutation = mutation
        self.states = states
        self.transitions = transitions
        self.violation = violation
        self.elapsed = elapsed
        #: True when the whole reachable space was enumerated (no
        #: violation, no state/time cap hit).
        self.complete = complete

    @property
    def ok(self):
        return self.violation is None


class ModelChecker:
    """BFS over the abstract protocol; see the module docstring."""

    def __init__(
        self,
        cores=2,
        lines=1,
        mutation=None,
        max_inflight=4,
        max_states=None,
        max_txns=2,
        max_spec=1,
    ):
        if cores < 2:
            raise ValueError("need at least 2 cores to say anything about coherence")
        if mutation is not None and mutation not in MUTATION_NAMES:
            raise ValueError(f"unknown mutation {mutation!r}; see MUTATION_NAMES")
        self.cores = cores
        self.lines = lines
        self.mutation = mutation
        #: Exploration bounds (the "bounded in-flight messages" knobs;
        #: see docs/STATIC_ANALYSIS.md for what each one prunes).
        self.max_inflight = max_inflight
        self.max_states = max_states
        self.max_txns = max_txns if max_txns is not None else cores
        self.max_spec = max_spec if max_spec is not None else cores
        self._core_perms = list(_permutations(range(cores)))
        self._line_perms = list(_permutations(range(lines)))

    # ------------------------------------------------------------------
    # state helpers

    def initial_state(self):
        n, m = self.cores, self.lines
        l1 = tuple(tuple("I" for _ in range(m)) for _ in range(n))
        l2 = tuple(False for _ in range(m))
        dirs = tuple((-1, (), False) for _ in range(m))
        llc = tuple(tuple(_SB_ABSENT for _ in range(m)) for _ in range(n))
        txns = tuple(None for _ in range(n))
        return (l1, l2, dirs, llc, txns, ())

    @staticmethod
    def _thaw(state):
        l1, l2, dirs, llc, txns, invs = state
        return (
            [list(row) for row in l1],
            list(l2),
            [list(d) for d in dirs],
            [list(row) for row in llc],
            list(txns),
            list(invs),
        )

    @staticmethod
    def _freeze(w):
        l1, l2, dirs, llc, txns, invs = w
        # sharer tuples are maintained sorted by every mutator, so no
        # re-sort here (this is the hottest function in the search)
        return (
            tuple(map(tuple, l1)),
            tuple(l2),
            tuple(map(tuple, dirs)),
            tuple(map(tuple, llc)),
            tuple(txns),
            tuple(sorted(invs)),
        )

    # directory helpers on a thawed state -------------------------------

    @staticmethod
    def _tracked(w, line):
        owner, sharers, _wb = w[2][line]
        cores = set(sharers)
        if owner >= 0:
            cores.add(owner)
        return cores

    @staticmethod
    def _add_sharer(w, line, core):
        owner, sharers, wb = w[2][line]
        if owner == core:
            return
        w[2][line] = [owner, tuple(sorted(set(sharers) | {core})), wb]

    @staticmethod
    def _set_owner(w, line, core):
        _owner, sharers, wb = w[2][line]
        w[2][line] = [core, tuple(s for s in sharers if s != core), wb]

    @staticmethod
    def _demote_owner(w, line):
        owner, sharers, wb = w[2][line]
        w[2][line] = [-1, tuple(sorted(set(sharers) | {owner})), wb]

    @staticmethod
    def _remove_core(w, line, core):
        owner, sharers, wb = w[2][line]
        if owner == core:
            owner = -1
        w[2][line] = [owner, tuple(s for s in sharers if s != core), wb]

    def _send_inv(self, w, dst, line, kind, origin):
        w[5].append((dst, line, kind, origin))

    def _purge_llc(self, w, line):
        """Protocol action: a visible access purges matching LLC-SB
        entries in every core (Section VI-C)."""
        if self.mutation == "purge_llc_sb_disabled":
            return
        for c in range(self.cores):
            w[3][c][line] = _SB_ABSENT

    def _mark_stale_llc(self, w, line, writer):
        """Auxiliary bookkeeping (always on): a performing store makes
        every surviving LLC-SB copy of the line stale."""
        for c in range(self.cores):
            if c != writer and w[3][c][line] == _SB_FRESH:
                w[3][c][line] = _SB_STALE

    def _route(self, state, kind, core, line):
        l1, l2, dirs, _llc, _txns, _invs = state
        owner, _sharers, wb = dirs[line]
        return route_request(
            kind,
            _CHAR_TO_STATE[l1[core][line]],
            owner >= 0 and owner != core,
            l2[line],
            wb,
        )

    @staticmethod
    def _l1_apply(w, core, line, event):
        cur = _CHAR_TO_STATE[w[0][core][line]]
        w[0][core][line] = _STATE_TO_CHAR[apply_l1_event(cur, event)]

    def _perform_fill_event(self, w, core, line):
        """The L1 event for a store performing into ``core``'s slot,
        selected by the resident state exactly as ``_fill_l1`` does."""
        cur = w[0][core][line]
        return L1Event.UPGRADE if cur == "S" else (
            L1Event.STORE_HIT if cur in "ME" else L1Event.FILL_MODIFIED
        )

    # ------------------------------------------------------------------
    # successor generation

    def successors(self, state):
        """All enabled transitions of ``state`` as a list of
        ``(label, tags, next_state, step_violation)`` tuples.

        ``tags`` is a frozenset; rules tagged ``"spec"`` must satisfy
        the invisibility projection (checked by the caller so that
        mutations which break it are *detected*, not crashed on).
        """
        out = []
        l1, l2, dirs, llc, txns, invs = state
        mut = self.mutation

        def emit(label, w, tags=frozenset(), viol=None):
            out.append((label, tags, self._freeze(w), viol))

        active = [t for t in txns if t is not None]
        spec_active = sum(1 for t in active if t[0] == "spec")
        may_issue = len(active) < self.max_txns
        # Line-local focus reduction: no rule reads or writes more than
        # one line, and every checked property is per-line, so
        # interleavings of work on distinct lines add no new per-line
        # behaviour.  While any line has in-flight work (a transaction,
        # an invalidation, or an open write-back window) all rules on
        # other lines are frozen; the cross-line state product
        # collapses to one excursion at a time over settled residue.
        unsettled = {t[1] for t in active}
        unsettled.update(ml for (_d, ml, _k, _o) in invs)
        unsettled.update(l for l in range(self.lines) if dirs[l][2])
        focus = unsettled or None

        def focused(l):
            return focus is None or l in focus

        for c in range(self.cores):
            txn = txns[c]
            if txn is None:
                if not may_issue:
                    continue
                for l in range(self.lines):
                    if not focused(l):
                        continue
                    self._gen_issue_load(state, c, l, emit)
                    self._gen_issue_store(state, c, l, emit)
                    if spec_active < self.max_spec:
                        self._gen_issue_spec(state, c, l, emit)
                continue
            kind = txn[0]
            if kind == "store":
                self._gen_perform_store(state, c, emit)
            elif kind in ("load", "valexp"):
                self._gen_deliver_fill(state, c, emit)
            elif kind == "spec":
                self._gen_spec_steps(state, c, emit)

        # asynchronous message deliveries / background transitions
        for msg in sorted(set(invs)):
            self._gen_deliver_inv(state, msg, emit)
        for c in range(self.cores):
            for l in range(self.lines):
                if l1[c][l] != "I" and focused(l):
                    self._gen_l1_evict(state, c, l, emit)
        for l in range(self.lines):
            if dirs[l][2]:
                w = self._thaw(state)
                w[2][l][2] = False
                emit(f"wb_land l{l}", w)
            if l2[l] and focused(l):
                self._gen_l2_evict(state, l, emit)
        return out

    # --- issue rules ---------------------------------------------------

    def _gen_issue_load(self, state, c, l, emit):
        if state[0][c][l] != "I":
            return  # readable copy: an L1 hit is the identity
        outcome = self._route(state, RequestKind.LOAD, c, l)
        w = self._thaw(state)
        if outcome is DirOutcome.OWNER_FORWARD:
            owner = state[2][l][0]
            if state[0][owner][l] in "ME":
                if self.mutation != "owner_forward_skips_demote":
                    self._l1_apply(w, owner, l, L1Event.DEMOTE)
            self._demote_owner(w, l)
            self._add_sharer(w, l, c)
        elif outcome is DirOutcome.L2_READ:
            self._add_sharer(w, l, c)
        elif outcome is DirOutcome.MEM_READ:
            w[1][l] = True
            self._add_sharer(w, l, c)
            self._purge_llc(w, l)
        else:  # pragma: no cover - routing table guarantees
            raise AssertionError(f"load routed to {outcome}")
        w[4][c] = ("load", l)
        emit(f"issue_load c{c} l{l} via {outcome.value}", w)

    def _gen_issue_store(self, state, c, l, emit):
        outcome = self._route(state, RequestKind.STORE, c, l)
        if (
            self.mutation == "store_hit_treats_shared_writable"
            and outcome is DirOutcome.STORE_UPGRADE
        ):
            # the seeded bug: S is treated as writable, so the store
            # performs locally without invalidating the other sharers
            outcome = DirOutcome.L1_HIT
        w = self._thaw(state)
        if outcome is DirOutcome.L1_HIT:
            # writable copy: the store performs atomically (there can be
            # no other live copies, so the ack set is empty).  Like
            # perform_store, the now-dirty copy absorbs any pending
            # recall and its write-back re-establishes L2 residency.
            #
            # Write-serialization property, checked at entry: a store
            # that performs without an ack wait must not coexist with a
            # live readable copy elsewhere.  With a genuinely writable
            # copy this is implied by SWMR; a protocol that wrongly
            # treats S as writable (store_hit_treats_shared_writable)
            # lands here with live sharers still standing.  A store by a
            # core whose own copy has a recall in flight is exempt: that
            # is the evict-recall race, resolved by the absorb below.
            viol = None
            if self._live(state, c, l):
                stale_readers = [
                    h for h in range(self.cores)
                    if h != c
                    and state[0][h][l] != "I"
                    and self._live(state, h, l)
                ]
                if stale_readers:
                    viol = Violation(
                        "swmr",
                        f"store by core {c} to line {l} performed locally "
                        f"(no ack wait) while cores {stale_readers} held "
                        "live readable copies",
                    )
            w[5][:] = [
                m for m in w[5]
                if not (m[0] == c and m[1] == l and m[2] == "cln")
            ]
            self._l1_apply(w, c, l, self._perform_fill_event(w, c, l))
            for t in sorted(self._tracked(w, l) - {c}):
                self._send_inv(w, t, l, "cln", -1)
                self._remove_core(w, l, t)
            self._set_owner(w, l, c)
            if not w[1][l]:
                w[1][l] = True
            self._mark_stale_llc(w, l, c)
            self._purge_llc_others_on_perform(w, l, c)
            emit(f"issue_store c{c} l{l} via {outcome.value}", w, viol=viol)
            return
        if outcome is DirOutcome.STORE_UPGRADE:
            targets = [t for t in self._tracked(w, l) if t != c]
            targets.sort()
            if self.mutation == "upgrade_drops_one_inv" and targets:
                targets = targets[:-1]  # the dropped invalidation edge
            for t in targets:
                self._send_inv(w, t, l, "ack", c)
                self._remove_core(w, l, t)
            self._l1_apply(w, c, l, L1Event.UPGRADE)
            self._set_owner(w, l, c)
            self._purge_llc(w, l)
            w[4][c] = ("store", l, len(targets))
        elif outcome is DirOutcome.OWNER_INVALIDATE:
            owner = state[2][l][0]
            self._send_inv(w, owner, l, "ack", c)
            self._set_owner(w, l, c)
            w[4][c] = ("store", l, 1)
        elif outcome is DirOutcome.L2_STORE:
            targets = sorted(self._tracked(w, l) - {c})
            for t in targets:
                self._send_inv(w, t, l, "ack", c)
                self._remove_core(w, l, t)
            self._set_owner(w, l, c)
            self._purge_llc(w, l)
            acks = len(targets)
            if self.mutation == "l2_store_ack_undercount" and acks:
                acks -= 1  # the ack count that ignores one sharer
            w[4][c] = ("store", l, acks)
        elif outcome is DirOutcome.MEM_STORE:
            w[1][l] = True
            self._set_owner(w, l, c)
            self._purge_llc(w, l)
            w[4][c] = ("store", l, 0)
        else:  # pragma: no cover
            raise AssertionError(f"store routed to {outcome}")
        if len(w[5]) > self.max_inflight:
            return  # in-flight message bound: prune, don't drop sends
        emit(f"issue_store c{c} l{l} via {outcome.value}", w)

    def _spec_route(self, state, w, c, l):
        """Shared Spec-GetS routing for first issue and nack retry.
        Returns the label suffix; mutates ``w`` (invisibly, unless a
        seeded mutation says otherwise)."""
        outcome = self._route(state, RequestKind.SPEC_LOAD, c, l)
        assert outcome_is_invisible(outcome), outcome
        if outcome is DirOutcome.SPEC_BOUNCE:
            if self.mutation == "spec_bounce_registers_sharer":
                self._add_sharer(w, l, c)
            w[4][c] = ("spec", l, "nack")
        elif outcome is DirOutcome.SPEC_FORWARD:
            w[4][c] = ("spec", l, "fwd")
        elif outcome is DirOutcome.SPEC_L2_READ:
            if self.mutation == "spec_l2_hit_registers_sharer":
                self._add_sharer(w, l, c)
            w[4][c] = ("spec", l, "data")
        elif outcome is DirOutcome.SPEC_MEM_READ:
            if self.mutation == "spec_mem_fills_l2":
                w[1][l] = True
            if self.mutation == "spec_mem_registers_sharer":
                self._add_sharer(w, l, c)
            w[4][c] = ("spec", l, "datam")
        else:  # pragma: no cover
            raise AssertionError(f"spec load routed to {outcome}")
        return outcome.value

    def _gen_issue_spec(self, state, c, l, emit):
        if state[0][c][l] != "I":
            return  # SPEC_PROBE on a readable copy is the identity
        w = self._thaw(state)
        via = self._spec_route(state, w, c, l)
        if self.mutation == "flagged_load_uses_fast_path":
            # a load the selective policy should have routed through the
            # USL path issues a normal visible fill instead
            self._l1_apply(w, c, l, L1Event.FILL_SHARED)
            self._add_sharer(w, l, c)
        emit(f"issue_spec c{c} l{l} via {via}", w, tags=frozenset({"spec"}))

    # --- transaction-advancing rules ----------------------------------

    def _purge_llc_others_on_perform(self, w, l, writer):
        if self.mutation == "purge_llc_sb_disabled":
            return
        for d in range(self.cores):
            if d != writer:
                w[3][d][l] = _SB_ABSENT

    def _gen_perform_store(self, state, c, emit):
        _kind, l, acks = state[4][c]
        limit = 1 if self.mutation == "perform_before_final_ack" else 0
        if acks > limit:
            return
        outstanding = sum(
            1 for (_d, ml, kind, origin) in state[5]
            if ml == l and kind == "ack" and origin == c
        )
        viol = None
        if outstanding:
            viol = Violation(
                "perform-acks",
                f"store by core {c} to line {l} performed with "
                f"{outstanding} invalidation ack(s) still in flight",
            )
        w = self._thaw(state)
        # a cleanup/recall invalidation sent at the pre-perform copy is
        # absorbed by the MSHR when the store's data arrives (in the
        # timed simulator the recall always lands first; the untimed
        # model must absorb it or it would destroy the performed copy)
        w[5][:] = [
            m for m in w[5] if not (m[0] == c and m[1] == l and m[2] == "cln")
        ]
        if self.mutation != "perform_skips_sharer_reassert":
            # re-invalidate sharers that registered during the window
            for t in sorted(self._tracked(w, l) - {c}):
                self._send_inv(w, t, l, "cln", -1)
                self._remove_core(w, l, t)
        self._set_owner(w, l, c)
        self._l1_apply(w, c, l, self._perform_fill_event(w, c, l))
        if not w[1][l]:
            # the line was recalled out of L2 mid-flight; the store's
            # data re-establishes residency (write-allocate)
            w[1][l] = True
        self._mark_stale_llc(w, l, c)
        self._purge_llc_others_on_perform(w, l, c)
        w[4][c] = None
        if len(w[5]) > self.max_inflight:
            return
        emit(f"perform_store c{c} l{l}", w, viol=viol)

    def _gen_deliver_fill(self, state, c, emit):
        kind, l = state[4][c]
        owner = state[2][l][0]
        w = self._thaw(state)
        w[4][c] = None
        if kind == "valexp":
            # whatever happens to the fill, the USL completes here and
            # its LLC-SB entry (if any survived) is dead
            w[3][c][l] = _SB_ABSENT
        if owner >= 0 and owner != c:
            # a writer claimed the line while our data was in flight
            emit(f"deliver_fill c{c} l{l} dropped_by_writer ({kind})", w)
            return
        pending = [m for m in w[5] if m[0] == c and m[1] == l]
        if not state[1][l] or pending:
            # the line was recalled out of L2, or an invalidation
            # reached the MSHR before the data: the invalidation wins
            # and the fill is squashed.  A recall is absorbed by the
            # MSHR; an ack-counted invalidation stays in flight so the
            # writer's ack arrives.
            for m in pending:
                if m[2] == "cln":
                    w[5].remove(m)
            self._remove_core(w, l, c)
            emit(f"deliver_fill c{c} l{l} dropped_by_recall ({kind})", w)
            return
        others = self._tracked(w, l) - {c}
        if others and self.mutation != "fill_exclusive_despite_sharers":
            self._l1_apply(w, c, l, L1Event.FILL_SHARED)
            self._add_sharer(w, l, c)
        else:
            self._l1_apply(w, c, l, L1Event.FILL_EXCLUSIVE)
            self._set_owner(w, l, c)
        emit(f"deliver_fill c{c} l{l} installed ({kind})", w)

    def _gen_spec_steps(self, state, c, emit):
        _kind, l, phase = state[4][c]
        spec = frozenset({"spec"})
        if phase == "fwd":
            owner = state[2][l][0]
            w = self._thaw(state)
            if owner >= 0 and owner != c and state[0][owner][l] in "MES":
                w[4][c] = ("spec", l, "filled")
                emit(f"deliver_spec c{c} l{l} forwarded", w, tags=spec)
            else:
                # ownership moved mid-flight: the forward nacks
                w[4][c] = ("spec", l, "nack")
                emit(f"deliver_spec c{c} l{l} forward_nacked", w, tags=spec)
        elif phase in ("data", "datam"):
            w = self._thaw(state)
            if phase == "datam":
                w[3][c][l] = _SB_FRESH  # LLC-SB insert (own, invisible)
            if self.mutation == "spec_mem_fills_l1":
                self._l1_apply(w, c, l, L1Event.FILL_SHARED)
            w[4][c] = ("spec", l, "filled")
            emit(f"deliver_spec c{c} l{l} data", w, tags=spec)
        elif phase == "nack":
            w = self._thaw(state)
            via = self._spec_route(state, w, c, l)
            if self.mutation == "spec_retry_goes_visible":
                # the retry of a nacked Spec-GetS re-issues as a visible
                # read and registers the requester in the directory
                self._add_sharer(w, l, c)
            emit(f"spec_retry c{c} l{l} via {via}", w, tags=spec)
        elif phase == "filled":
            # the core's choice: squash, or reach the visibility point
            w = self._thaw(state)
            w[4][c] = None
            w[3][c][l] = _SB_ABSENT  # epoch bump orphans the entry
            emit(f"spec_squash c{c} l{l}", w, tags=spec)
            self._gen_spec_visible(state, c, l, emit)

    def _gen_spec_visible(self, state, c, l, emit):
        """The USL reaches its visibility point: issue the
        validation/exposure, a *visible* read (lifecycle edge E/V -> C
        begins here)."""
        outcome = self._route(state, RequestKind.VALIDATE, c, l)
        w = self._thaw(state)
        viol = None
        if outcome is DirOutcome.OWNER_FORWARD:
            owner = state[2][l][0]
            if state[0][owner][l] in "ME":
                self._l1_apply(w, owner, l, L1Event.DEMOTE)
            self._demote_owner(w, l)
            self._add_sharer(w, l, c)
        elif outcome is DirOutcome.L2_READ:
            self._add_sharer(w, l, c)
        elif outcome is DirOutcome.MEM_READ:
            entry = state[3][c][l]
            if entry == _SB_STALE:
                viol = Violation(
                    "fresh-validate",
                    f"validation by core {c} of line {l} consumed a stale "
                    "LLC-SB entry (a store performed after the speculative "
                    "read and the purge never happened)",
                )
            w[1][l] = True
            self._add_sharer(w, l, c)
            self._purge_llc(w, l)
        else:  # pragma: no cover
            raise AssertionError(f"validation routed to {outcome}")
        w[4][c] = ("valexp", l)
        emit(f"spec_visible c{c} l{l} via {outcome.value}", w, viol=viol)

    # --- background rules ---------------------------------------------

    def _gen_deliver_inv(self, state, msg, emit):
        dst, l, kind, origin = msg
        w = self._thaw(state)
        w[5].remove(msg)
        if w[0][dst][l] != "I":
            self._l1_apply(w, dst, l, L1Event.INVALIDATE)
        if kind == "ack":
            txn = w[4][origin]
            if txn is not None and txn[0] == "store" and txn[1] == l:
                # an ack beyond the recorded count (reachable only under
                # l2_store_ack_undercount) is dropped, as the buggy
                # counter would drop it
                w[4][origin] = ("store", l, max(0, txn[2] - 1))
            # else: the origin already performed (only reachable under
            # the perform_before_final_ack mutation); the late ack is
            # simply dropped, as the buggy protocol would.
        emit(f"deliver_inv c{dst} l{l} {kind} from {origin}", w)

    def _gen_l1_evict(self, state, c, l, emit):
        was = state[0][c][l]
        w = self._thaw(state)
        self._l1_apply(w, c, l, L1Event.EVICT)
        if self.mutation != "l1_evict_keeps_directory_entry":
            self._remove_core(w, l, c)
        if was == "M":
            w[2][l][2] = True  # dirty write-back window opens
        emit(f"l1_evict c{c} l{l} was {was}", w)

    def _gen_l2_evict(self, state, l, emit):
        w = self._thaw(state)
        if self.mutation != "l2_evict_skips_recall":
            for t in sorted(self._tracked(w, l)):
                self._send_inv(w, t, l, "cln", -1)
        w[2][l] = [-1, (), False]
        w[1][l] = False
        if len(w[5]) > self.max_inflight:
            return
        emit(f"l2_evict l{l}", w)

    # ------------------------------------------------------------------
    # invariants

    def _live(self, state, c, l):
        """A copy is *live* when no invalidation is in flight to it."""
        return not any(dst == c and ml == l for (dst, ml, _k, _o) in state[5])

    def check_invariants(self, state):
        """State-level invariants; returns a Violation or None."""
        l1, l2, dirs, _llc, txns, invs = state
        for l in range(self.lines):
            live_readable = [
                c for c in range(self.cores)
                if l1[c][l] != "I" and self._live(state, c, l)
            ]
            live_writable = [c for c in live_readable if l1[c][l] in "ME"]
            # SWMR
            if live_writable and len(live_readable) > 1:
                return Violation(
                    "swmr",
                    f"line {l}: core {live_writable[0]} holds a live "
                    f"{l1[live_writable[0]][l]} copy while cores "
                    f"{[c for c in live_readable if c != live_writable[0]]} "
                    "also hold live readable copies",
                )
            # inclusion (checked before directory agreement: when a
            # dropped recall leaves both a live L1 copy and no L2 line,
            # the root cause is the broken inclusion property)
            if live_readable and not l2[l]:
                return Violation(
                    "inclusion",
                    f"line {l}: cores {live_readable} hold live L1 copies "
                    "but the line is not L2-resident",
                )
            owner, sharers, _wb = dirs[l]
            tracked = set(sharers) | ({owner} if owner >= 0 else set())
            # directory agreement, both directions
            for c in live_readable:
                if c not in tracked:
                    return Violation(
                        "dir-agreement",
                        f"line {l}: core {c} holds a live {l1[c][l]} copy "
                        "the directory does not track",
                    )
            store_in_flight = any(
                txns[c] is not None
                and txns[c][0] == "store"
                and txns[c][1] == l
                for c in range(self.cores)
            )
            for t in sorted(tracked):
                if l1[t][l] != "I":
                    continue
                has_inv = any(
                    dst == t and ml == l for (dst, ml, _k, _o) in invs
                )
                txn = txns[t]
                has_txn = (
                    txn is not None and txn[0] != "spec" and txn[1] == l
                )
                if store_in_flight:
                    # a mid-window writer re-asserts the directory when
                    # it performs (set_owner plus the sharer sweep), so
                    # stale owner/sharer fields are legal while any
                    # store for the line is outstanding
                    continue
                if not has_inv and not has_txn:
                    return Violation(
                        "dir-agreement",
                        f"line {l}: directory tracks core {t} which holds "
                        "nothing and has no transaction or invalidation "
                        "in flight",
                    )
            if owner >= 0 and l1[owner][l] == "S":
                return Violation(
                    "dir-agreement",
                    f"line {l}: directory owner {owner} holds the line in S",
                )
        # progress: every store's remaining acks must be deliverable
        for c in range(self.cores):
            txn = txns[c]
            if txn is not None and txn[0] == "store":
                _k, l, acks = txn
                inflight = sum(
                    1 for (_d, ml, kind, origin) in invs
                    if ml == l and kind == "ack" and origin == c
                )
                if acks > inflight:
                    return Violation(
                        "progress",
                        f"store by core {c} to line {l} waits for {acks} "
                        f"ack(s) but only {inflight} invalidation(s) are in "
                        "flight: the perform guard can never be satisfied",
                    )
        return None

    @staticmethod
    def _quiescent(state):
        return all(t is None for t in state[4]) and not state[5]

    @staticmethod
    def _visible_projection(state, actor):
        """Everything an observer other than ``actor`` could measure:
        L1 states, L2 residency, directory metadata, and every *other*
        core's LLC-SB."""
        l1, l2, dirs, llc, _txns, _invs = state
        masked = tuple(
            row if c != actor else None for c, row in enumerate(llc)
        )
        return (l1, l2, dirs, masked)

    @staticmethod
    def _rule_actor(label):
        for token in label.split():
            if token.startswith("c") and token[1:].isdigit():
                return int(token[1:])
        return -1

    # ------------------------------------------------------------------
    # symmetry reduction

    def canonicalize(self, state):
        """Smallest state under all core/line renamings.  Cores and
        lines are fully symmetric in the rule set, so the BFS only
        needs one representative per orbit (up to ``cores! * lines!``
        fewer states).  Counterexample traces stay valid because each
        recorded label applies to the canonical parent; the replayer
        re-canonicalizes after every step."""
        l1, l2, dirs, llc, txns, invs = state
        ncores, nlines = self.cores, self.lines
        best = None
        best_key = None
        for p in self._core_perms:
            for q in self._line_perms:
                # staged lexicographic comparison: build the L1
                # component first and bail out if it already loses --
                # most candidates are eliminated without touching the
                # rest of the state
                l1n = [None] * ncores
                for old in range(ncores):
                    row = l1[old]
                    nrow = [None] * nlines
                    for ol in range(nlines):
                        nrow[q[ol]] = row[ol]
                    l1n[p[old]] = tuple(nrow)
                l1t = tuple(l1n)
                if best_key is not None and l1t > best_key[0]:
                    continue
                llcn = [None] * ncores
                txnn = [None] * ncores
                for old in range(ncores):
                    lrow = llc[old]
                    nlrow = [None] * nlines
                    for ol in range(nlines):
                        nlrow[q[ol]] = lrow[ol]
                    llcn[p[old]] = tuple(nlrow)
                    t = txns[old]
                    if t is not None:
                        if len(t) == 2:
                            t = (t[0], q[t[1]])
                        else:
                            t = (t[0], q[t[1]], t[2])
                    txnn[p[old]] = t
                l2n = [None] * nlines
                dirn = [None] * nlines
                for ol in range(nlines):
                    l2n[q[ol]] = l2[ol]
                    owner, sharers, wb = dirs[ol]
                    dirn[q[ol]] = (
                        p[owner] if owner >= 0 else -1,
                        tuple(sorted([p[s] for s in sharers])),
                        wb,
                    )
                cand = (
                    l1t,
                    tuple(l2n),
                    tuple(dirn),
                    tuple(llcn),
                    tuple(txnn),
                    tuple(
                        sorted(
                            [
                                (p[d], q[ml], k, p[og] if og >= 0 else -1)
                                for (d, ml, k, og) in invs
                            ]
                        )
                    ),
                )
                # None txn slots are not orderable against tuples, so
                # compare via a key that maps them to ()
                key = cand[:4] + (
                    tuple(t if t is not None else () for t in txnn),
                    cand[5],
                )
                if best is None or key < best_key:
                    best, best_key = cand, key
        return best

    # ------------------------------------------------------------------
    # search

    def run(self, max_seconds=None):
        """Breadth-first enumeration of the reachable space.  Stops at
        the first violation (whose trace is then shortest-possible)."""
        start = time.monotonic()
        init = self.initial_state()
        viol = self.check_invariants(init)
        if viol is not None:
            return self._result(1, 0, viol, start, complete=False)

        index = {init: 0}
        # hash-compacted dedup of raw (pre-canonicalization) states; a
        # 64-bit collision could hide a path, with probability ~n^2/2^64
        # (Murphi's hash-compaction tradeoff)
        raw_seen = {hash(init)}
        states = [init]
        parents = [(-1, None)]
        frontier = deque([0])
        transitions = 0

        while frontier:
            if self.max_states and len(states) > self.max_states:
                return self._result(len(states), transitions, None, start, complete=False)
            if max_seconds is not None and time.monotonic() - start > max_seconds:
                return self._result(len(states), transitions, None, start, complete=False)
            idx = frontier.popleft()
            st = states[idx]
            succs = self.successors(st)
            if not succs and not self._quiescent(st):
                viol = Violation(
                    "progress", "non-quiescent state has no successor (deadlock)"
                )
                viol.trace = self._trace(parents, states, idx)
                return self._result(len(states), transitions, viol, start, complete=False)
            for label, tags, ns, step_viol in succs:
                transitions += 1
                if step_viol is None and "spec" in tags:
                    actor = self._rule_actor(label)
                    before = self._visible_projection(st, actor)
                    after = self._visible_projection(ns, actor)
                    if before != after:
                        step_viol = Violation(
                            "invisibility",
                            f"speculative rule '{label}' changed "
                            "observer-visible state before the visibility "
                            "point",
                        )
                if step_viol is not None:
                    step_viol.trace = self._trace(parents, states, idx) + [label]
                    return self._result(
                        len(states), transitions, step_viol, start, complete=False
                    )
                h = hash(ns)
                if h in raw_seen:
                    continue
                raw_seen.add(h)
                ns = self.canonicalize(ns)
                if ns in index:
                    continue
                viol = self.check_invariants(ns)
                index[ns] = len(states)
                states.append(ns)
                parents.append((idx, label))
                if viol is not None:
                    viol.trace = self._trace(parents, states, len(states) - 1)
                    return self._result(
                        len(states), transitions, viol, start, complete=False
                    )
                frontier.append(len(states) - 1)
        return self._result(len(states), transitions, None, start, complete=True)

    def _result(self, nstates, ntrans, viol, start, complete):
        return CheckResult(
            self.cores,
            self.lines,
            self.mutation,
            nstates,
            ntrans,
            viol,
            time.monotonic() - start,
            complete,
        )

    @staticmethod
    def _trace(parents, states, idx):
        labels = []
        while idx > 0:
            idx, label = parents[idx][0], parents[idx][1]
            labels.append(label)
        labels.reverse()
        return labels

    # ------------------------------------------------------------------
    # trace replay support

    def apply_label(self, state, label):
        """Apply the successor named ``label`` to ``state``; used by the
        counterexample replayer.  Returns ``(next_state,
        step_violation)`` and raises KeyError when the rule is not
        enabled (a corrupt or stale trace)."""
        for got, tags, ns, viol in self.successors(state):
            if got == label:
                if viol is None and "spec" in tags:
                    actor = self._rule_actor(label)
                    if self._visible_projection(state, actor) != self._visible_projection(ns, actor):
                        viol = Violation(
                            "invisibility",
                            f"speculative rule '{label}' changed "
                            "observer-visible state before the visibility point",
                        )
                return ns, viol
        raise KeyError(f"rule {label!r} is not enabled in this state")
