"""CLI for the offline verification layer.

::

    python -m repro.staticcheck model --cores 3 --lines 2
    python -m repro.staticcheck model --all-mutations --replay
    python -m repro.staticcheck model --mutation upgrade_drops_one_inv
    python -m repro.staticcheck lint src/repro --format json
    python -m repro.staticcheck lint --list-rules
    python -m repro.staticcheck specflow
    python -m repro.staticcheck specflow --witness --program spectre_v1
    python -m repro.staticcheck specflow --mutations --evidence

Exit codes: 0 verified/clean, 1 violation, missed mutation, incomplete
exploration, lint finding, UNKNOWN/misclassified specflow load, failed
specflow mutation flip, or dynamic-evidence mismatch; 2 usage errors
(argparse).
"""

from __future__ import annotations

import argparse
import json
import sys

from .lint import audit_suppressions, rule_catalog, run_lint
from .lint.report import render_json, render_text
from .model import MUTATION_NAMES, ModelChecker
from .mutations import MUTATIONS, check_mutation


def _print_violation(violation, indent="  "):
    print(f"{indent}property : {violation.prop}")
    print(f"{indent}detail   : {violation.detail}")
    print(f"{indent}trace ({len(violation.trace)} steps):")
    for step in violation.trace:
        print(f"{indent}  {step}")


def _replay_outcome(trace, cores, lines):
    """Replay a counterexample on the live simulator; returns a verdict
    string ('clean' when the real code survives the interleaving)."""
    from .replay import ReplayError, replay_trace

    try:
        replayer = replay_trace(trace, cores=cores, lines=lines)
    except ReplayError as exc:
        return f"DIVERGED: {exc}"
    return f"clean ({replayer.steps_replayed} stimulus steps)"


def _cmd_model_base(args):
    checker = ModelChecker(
        cores=args.cores,
        lines=args.lines,
        max_states=args.max_states,
    )
    result = checker.run(max_seconds=args.max_seconds)
    payload = {
        "cores": result.cores,
        "lines": result.lines,
        "states": result.states,
        "transitions": result.transitions,
        "elapsed_s": round(result.elapsed, 3),
        "complete": result.complete,
        "ok": result.ok,
    }
    if args.json:
        if result.violation is not None:
            payload["violation"] = {
                "property": result.violation.prop,
                "detail": result.violation.detail,
                "trace": result.violation.trace,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"model: {result.cores} cores x {result.lines} lines: "
            f"{result.states} states, {result.transitions} transitions "
            f"in {result.elapsed:.2f}s"
        )
        if result.ok and result.complete:
            print(
                "model: exhaustive - SWMR, directory agreement, inclusion, "
                "progress and invisibility hold on every reachable state"
            )
        elif result.ok:
            print("model: INCOMPLETE (state or time cap hit, no violation seen)")
        else:
            print("model: VIOLATION")
            _print_violation(result.violation)
    return 0 if (result.ok and result.complete) else 1


def _cmd_model_mutation(args, names):
    failures = 0
    expected = {m.name: m.expected_property for m in MUTATIONS}
    for name in names:
        result = check_mutation(
            name,
            cores=args.cores,
            lines=args.lines,
            max_seconds=args.max_seconds,
        )
        if result.violation is None:
            print(
                f"mutation {name}: MISSED "
                f"({result.states} states, {result.elapsed:.2f}s)"
            )
            failures += 1
            continue
        prop_ok = result.violation.prop == expected[name]
        verdict = "caught" if prop_ok else (
            f"caught via {result.violation.prop} "
            f"(expected {expected[name]})"
        )
        print(
            f"mutation {name}: {verdict} "
            f"[{result.violation.prop}, {len(result.violation.trace)}-step "
            f"trace, {result.elapsed:.2f}s]"
        )
        if not prop_ok:
            failures += 1
        if args.verbose:
            _print_violation(result.violation)
        if args.replay:
            outcome = _replay_outcome(
                result.violation.trace, args.cores, args.lines
            )
            print(f"  live-simulator replay: {outcome}")
            if outcome.startswith("DIVERGED"):
                failures += 1
    total = len(names)
    print(f"mutations: {total - failures}/{total} verified")
    return 0 if failures == 0 else 1


def _cmd_model(args):
    if args.mutation is not None:
        return _cmd_model_mutation(args, [args.mutation])
    if args.all_mutations:
        return _cmd_model_mutation(args, list(MUTATION_NAMES))
    return _cmd_model_base(args)


def _cmd_lint(args):
    if args.list_rules:
        for name, (description, scopes) in sorted(rule_catalog().items()):
            print(f"{name} [{', '.join(scopes)}]")
            print(f"    {description}")
        return 0
    if not args.paths:
        print("lint: no paths given (try: python -m repro.staticcheck "
              "lint src/repro)", file=sys.stderr)
        return 2
    if args.audit_suppressions:
        entries = audit_suppressions(args.paths)
        if args.format == "json":
            print(json.dumps(entries, indent=2, sort_keys=True))
        else:
            for entry in entries:
                print(
                    f"{entry['path']}:{entry['line']}: "
                    f"{', '.join(entry['rules'])} -- "
                    f"{entry['justification']}"
                )
            print(f"lint: {len(entries)} active suppression(s)")
        return 0
    findings, nfiles = run_lint(args.paths)
    if args.format == "json":
        print(render_json(findings, nfiles))
    else:
        print(render_text(findings, nfiles))
    return 1 if findings else 0


def _specflow_text(report, witness, proofs=False):
    s = report.summary
    print(
        f"specflow: {report.program} [{report.model}, window "
        f"{report.window}]  TRANSMIT={s['TRANSMIT']} SAFE={s['SAFE']} "
        f"UNKNOWN={s['UNKNOWN']}"
    )
    for rep in report.loads:
        if rep.classification == "SAFE":
            if proofs and rep.proof is not None:
                detail = {k: v for k, v in rep.proof.items() if k != "kind"}
                print(
                    f"  0x{rep.pc:x} SAFE proof={rep.proof['kind']} "
                    f"{detail}"
                )
            continue  # the summary line carries the count
        line = f"  0x{rep.pc:x} {rep.classification}"
        if rep.classification == "TRANSMIT":
            line += f" taints={','.join(rep.taints)}"
            if rep.shadow:
                line += (
                    f" shadow={rep.shadow['kind']}@{rep.shadow['pc']} "
                    f"({rep.shadow['why']})"
                )
        elif rep.classification == "UNKNOWN":
            line += f" reason[{rep.reason_kind}]={rep.reason}"
        print(line)
        if witness and rep.classification == "TRANSMIT":
            for step in rep.witness:
                label = f" [{step['label']}]" if step.get("label") else ""
                print(
                    f"      {step['at']}: {step['kind']} at "
                    f"{step['pc']}{label} -- {step['note']}"
                )


def _cmd_specflow(args):
    from ..specflow import analyze_program, all_programs
    from ..specflow.mutations import check_all as specflow_check_all

    programs = all_programs()
    if args.program is not None:
        programs = [p for p in programs if p.name == args.program]
        if not programs:
            print(f"specflow: unknown program {args.program!r}",
                  file=sys.stderr)
            return 2
    failures = 0
    reports = []
    for prog in programs:
        report = analyze_program(
            prog, model=args.model, window=args.window,
            precision=args.precision,
        )
        reports.append(report)
        unknown = report.pcs("UNKNOWN")
        if unknown and not args.allow_unknown:
            failures += 1
        want = tuple(sorted(prog.expected_transmit.get(args.model, ())))
        got = tuple(sorted(report.pcs("TRANSMIT")))
        if got != want:
            failures += 1
    if args.json:
        print(json.dumps(
            {
                "attack_model": args.model,
                "window": args.window,
                "precision": args.precision,
                "programs": [r.to_dict() for r in reports],
            },
            indent=2, sort_keys=True,
        ))
    else:
        for prog, report in zip(programs, reports):
            _specflow_text(report, args.witness, args.proofs)
            want = tuple(sorted(prog.expected_transmit.get(args.model, ())))
            got = tuple(sorted(report.pcs("TRANSMIT")))
            if got != want:
                print(
                    f"  MISCLASSIFIED: transmit PCs "
                    f"{[hex(pc) for pc in got]} != expected "
                    f"{[hex(pc) for pc in want]}"
                )
            unknown = report.pcs("UNKNOWN")
            if unknown and not args.allow_unknown:
                print(
                    f"  UNRESOLVED: {len(unknown)} UNKNOWN load(s) at "
                    f"default config: {[hex(pc) for pc in unknown]}"
                )
    if args.mutations:
        for outcome in specflow_check_all(window=args.window):
            verdict = "flipped" if outcome.flipped else "NOT FLIPPED"
            print(
                f"specflow mutation {outcome.mutation.name}: {verdict} "
                f"[{outcome.baseline_class} -> {outcome.mutant_class} at "
                f"0x{outcome.mutation.target_pc:x}]"
            )
            if not outcome.flipped:
                failures += 1
            elif args.witness:
                for step in outcome.witness:
                    print(f"      {step['at']}: {step['note']}")
    if args.evidence:
        from ..specflow.evidence import gather_evidence

        for outcome in gather_evidence():
            verdict = "consistent" if outcome.ok else "VIOLATION"
            print(
                f"specflow evidence {outcome.program}: {verdict} "
                f"(safe={len(outcome.safe_pcs_checked)} "
                f"transmit={len(outcome.transmit_pcs_checked)})"
            )
            for violation in outcome.violations:
                print(f"      {violation}")
            if not outcome.ok:
                failures += 1
    if not args.json:
        total = len(programs)
        print(f"specflow: {total} program(s) analyzed, "
              f"{failures} failure(s)")
    return 0 if failures == 0 else 1


def make_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="offline verification: protocol model checker + reprolint",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    model = sub.add_parser(
        "model", help="exhaustive MESI/InvisiSpec protocol model check"
    )
    model.add_argument("--cores", type=int, default=2)
    model.add_argument("--lines", type=int, default=1)
    model.add_argument(
        "--max-seconds", type=float, default=None,
        help="wall-clock budget for the search (default: none)",
    )
    model.add_argument(
        "--max-states", type=int, default=None,
        help="state-count cap (marks the run incomplete when hit)",
    )
    group = model.add_mutually_exclusive_group()
    group.add_argument(
        "--mutation", choices=sorted(MUTATION_NAMES), default=None,
        help="check one seeded protocol bug instead of the base protocol",
    )
    group.add_argument(
        "--all-mutations", action="store_true",
        help="verify every seeded mutation is caught",
    )
    model.add_argument(
        "--replay", action="store_true",
        help="replay each counterexample trace on the live simulator",
    )
    model.add_argument("--verbose", action="store_true",
                       help="print counterexample traces")
    model.add_argument("--json", action="store_true",
                       help="JSON output (base check only)")
    model.set_defaults(func=_cmd_model)

    lint = sub.add_parser("lint", help="reprolint simulation-hygiene linter")
    lint.add_argument("paths", nargs="*", help="files or directories")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument(
        "--audit-suppressions", action="store_true",
        help="print the active waiver list (every justified suppression) "
        "instead of linting",
    )
    lint.set_defaults(func=_cmd_lint)

    specflow = sub.add_parser(
        "specflow",
        help="speculative taint analysis over workload/attack programs",
    )
    specflow.add_argument(
        "--program", default=None,
        help="analyze one program by name (default: full corpus)",
    )
    specflow.add_argument(
        "--model", choices=("spectre", "futuristic"), default="futuristic",
        help="attack model: which older ops cast speculation shadows",
    )
    specflow.add_argument(
        "--window", type=int, default=64,
        help="speculation window in dynamic ops (default: 64)",
    )
    specflow.add_argument(
        "--precision", choices=("full", "taint"), default="full",
        help="abstract domain: 'full' (v2: path splitting, value sets, "
        "window discharge) or 'taint' (v1 pure-taint baseline)",
    )
    specflow.add_argument(
        "--witness", action="store_true",
        help="print the taint-chain witness for every TRANSMIT load",
    )
    specflow.add_argument(
        "--proofs", action="store_true",
        help="print the discharge proof carried by every proven-SAFE load",
    )
    specflow.add_argument(
        "--mutations", action="store_true",
        help="check the seeded program mutations flip classifications",
    )
    specflow.add_argument(
        "--evidence", action="store_true",
        help="cross-validate verdicts dynamically on the BASE simulator",
    )
    specflow.add_argument(
        "--allow-unknown", action="store_true",
        help="do not fail on UNKNOWN classifications",
    )
    specflow.add_argument("--json", action="store_true",
                          help="machine-readable report")
    specflow.set_defaults(func=_cmd_specflow)
    return parser


def main(argv=None):
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
