"""Registry of seeded single-edit protocol mutations.

Each mutation is one deliberate bug planted in the abstract protocol
(:mod:`repro.staticcheck.model` consults ``ModelChecker.mutation`` at
the exact rule site the edit would land in the real code).  The model
checker must catch every one of them with a counterexample trace; the
traces are replayed through the simulation kernel as regression tests
(tests/coherence/test_model_traces.py).

``expected_property`` names the invariant the checker is expected to
report.  A mutation being caught by a *different* (also valid)
property is still a detection, but the expectation is asserted in
tests so that a silent weakening of one invariant cannot hide behind
another.
"""

from __future__ import annotations

from .model import ModelChecker, MUTATION_NAMES


class Mutation:
    __slots__ = ("name", "description", "expected_property")

    def __init__(self, name, description, expected_property):
        self.name = name
        self.description = description
        self.expected_property = expected_property


MUTATIONS = [
    Mutation(
        "spec_mem_fills_l1",
        "a Spec-GetS memory read installs the line in the requester's L1",
        "invisibility",
    ),
    Mutation(
        "spec_mem_fills_l2",
        "a Spec-GetS memory read fills the L2 bank",
        "invisibility",
    ),
    Mutation(
        "spec_mem_registers_sharer",
        "a Spec-GetS memory read registers the requester in the directory",
        "invisibility",
    ),
    Mutation(
        "spec_l2_hit_registers_sharer",
        "a Spec-GetS L2 hit adds the requester to the sharer list",
        "invisibility",
    ),
    Mutation(
        "spec_bounce_registers_sharer",
        "a nacked Spec-GetS still registers the requester as a sharer",
        "invisibility",
    ),
    Mutation(
        "store_hit_treats_shared_writable",
        "a store treats an S copy as writable and skips the upgrade",
        "swmr",
    ),
    Mutation(
        "fill_exclusive_despite_sharers",
        "a read fill grants E even though other sharers are tracked",
        "swmr",
    ),
    Mutation(
        "owner_forward_skips_demote",
        "a forwarded visible read leaves the owner's copy in M/E",
        "swmr",
    ),
    Mutation(
        "upgrade_drops_one_inv",
        "the S->M upgrade drops the invalidation to the last sharer",
        "swmr",
    ),
    Mutation(
        "l2_store_ack_undercount",
        "an L2-hit store's invalidation ack count ignores one sharer, so "
        "the store can perform before that sharer's copy is dead",
        "perform-acks",
    ),
    Mutation(
        "perform_before_final_ack",
        "a store performs while one invalidation ack is still outstanding",
        "perform-acks",
    ),
    Mutation(
        "perform_skips_sharer_reassert",
        "a performing store does not re-invalidate sharers that appeared "
        "during its window",
        "swmr",
    ),
    Mutation(
        "l1_evict_keeps_directory_entry",
        "an L1 eviction never informs the directory",
        "dir-agreement",
    ),
    Mutation(
        "l2_evict_skips_recall",
        "an L2 eviction drops the line without recalling the L1 copies",
        "inclusion",
    ),
    Mutation(
        "purge_llc_sb_disabled",
        "visible accesses no longer purge matching LLC-SB entries "
        "(a speculative L2 fill stays consumable after a store)",
        "fresh-validate",
    ),
    Mutation(
        "flagged_load_uses_fast_path",
        "a load the specflow analysis flagged (selective protection) "
        "issues down the conventional fast path: visible L1 fill plus a "
        "directory entry while still speculative",
        "invisibility",
    ),
    Mutation(
        "spec_retry_goes_visible",
        "the retry of a nacked Spec-GetS re-issues as a visible read, "
        "registering the still-speculative requester in the directory",
        "invisibility",
    ),
]

assert {m.name for m in MUTATIONS} == set(MUTATION_NAMES)


def check_mutation(name, cores=2, lines=1, max_seconds=120):
    """Run the checker against one mutation; returns the CheckResult
    (``result.ok`` False means the bug was caught, as it must be)."""
    return ModelChecker(cores=cores, lines=lines, mutation=name).run(
        max_seconds=max_seconds
    )


def check_all(cores=2, lines=1, max_seconds=120):
    """Yield ``(Mutation, CheckResult)`` for every registered mutation."""
    for mut in MUTATIONS:
        yield mut, check_mutation(mut.name, cores, lines, max_seconds)
