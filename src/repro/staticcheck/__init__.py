"""Offline verification layer: protocol model checker + reprolint.

Two engines, one CLI (``python -m repro.staticcheck``):

* :mod:`model` — a Murphi-style explicit-state model checker for the
  MESI + InvisiSpec protocol.  It enumerates every reachable
  interleaving of small configurations (2-3 cores x 1-2 lines) and
  checks SWMR, directory/sharer agreement, L2 inclusion, transaction
  progress, and the InvisiSpec invisibility property against the same
  declarative tables (:mod:`repro.coherence.protocol`) that drive the
  live simulator.
* :mod:`mutations` — a registry of seeded single-edit protocol bugs the
  checker must catch, each with a minimal counterexample trace.
* :mod:`replay` — replays a counterexample trace step by step through a
  :class:`repro.sim.kernel.SimKernel` as a regression test.
* :mod:`lint` — ``reprolint``, the AST-based simulation-hygiene linter.
"""

from .model import CheckResult, ModelChecker, Violation

__all__ = ["CheckResult", "ModelChecker", "Violation"]
