"""Replay model-checker counterexample traces on the live simulator.

A counterexample from :mod:`repro.staticcheck.model` is a list of rule
labels -- the shortest message interleaving that drives the *mutated*
abstract protocol into a property violation.  This module turns such a
trace into a concrete stimulus program for the real, unmodified
:class:`~repro.coherence.hierarchy.CacheHierarchy` driven by a
:class:`~repro.sim.kernel.SimKernel`, and asserts that the real code
survives it:

* every request completes (no deadlock, no lost fill);
* invisible steps (Spec-GetS) leave no footprint in the L1s, the L2,
  or the directory;
* at quiescence the hierarchy satisfies SWMR, directory agreement and
  L2 inclusion, and the memory image holds the last value stored to
  each line.

The timed simulator schedules its own deliveries, so the *async* rule
labels of the abstract trace (``deliver_fill``, ``deliver_inv``,
``perform_store``, ``wb_land``, ``deliver_spec``, ``spec_retry``) have
no replay action: running each submitted request to completion covers
them.  The *stimulus* labels map one-to-one:

================  ====================================================
abstract label    live-simulator action
================  ====================================================
``issue_load``    submit a ``LOAD``
``issue_store``   submit a ``STORE`` (fresh value per step)
``issue_spec``    snapshot visible state, submit a ``SPEC_LOAD``,
                  assert the snapshot is unchanged on completion
``spec_visible``  submit the paired ``VALIDATE`` (same lq slot/epoch)
``spec_squash``   squash: bump the core's epoch, no memory access
``l1_evict``      force the line out of that core's L1 through the
                  real eviction path (directory notify + write-back)
``l2_evict``      force the line out of its L2 bank through the real
                  recall path (L1 recalls + directory drop)
================  ====================================================

Each replayed trace is a regression test (tests/coherence/
test_model_traces.py): the bug the checker caught in the mutated model
must not exist in the shipped protocol.
"""

from __future__ import annotations

import itertools
import re

from ..coherence.hierarchy import CacheHierarchy, MemRequest, RequestKind
from ..coherence.mesi import MESIState
from ..invisispec.llc_sb import LLCSpeculativeBuffer
from ..mem.address import AddressSpace
from ..mem.memimage import MemoryImage
from ..network.noc import TrafficCategory
from ..params import SystemParams
from ..sim.kernel import SimKernel
from ..stats.counters import Counters

__all__ = ["ReplayError", "TraceReplayer", "replay_trace"]

#: ``verb cN lM [rest]`` -- c/l groups are optional (``l2_evict l0``,
#: ``wb_land l0`` have no core; squash/evict labels carry trailing text).
_LABEL_RE = re.compile(
    r"^(?P<verb>[a-z][a-z0-9_]*)(?: c(?P<core>\d+))?(?: l(?P<line>\d+))?(?: (?P<rest>.*))?$"
)

#: Labels that are internal/asynchronous in the abstract model; the
#: timed simulator performs them on its own schedule.
_ASYNC_VERBS = frozenset(
    {
        "perform_store",
        "deliver_fill",
        "deliver_inv",
        "deliver_spec",
        "spec_retry",
        "wb_land",
    }
)

#: Line-address stride between abstract line indices.  Distinct L2 sets
#: and (with more than one bank) distinct home banks, like the model's
#: independent lines.
_LINE_STRIDE = 0x4_0000
_LINE_BASE = 0x10_0000


class ReplayError(AssertionError):
    """The live simulator diverged from the protocol's guarantees."""


def parse_label(label):
    """Split a rule label into ``(verb, core, line, rest)``."""
    m = _LABEL_RE.match(label)
    if m is None:
        raise ValueError(f"unparseable trace label: {label!r}")
    core = m.group("core")
    line = m.group("line")
    return (
        m.group("verb"),
        int(core) if core is not None else None,
        int(line) if line is not None else None,
        m.group("rest") or "",
    )


class _StubCore:
    """Receives invalidation/eviction callbacks; records them."""

    def __init__(self):
        self.invalidations = []
        self.evictions = []

    def on_invalidation(self, line, reason):
        self.invalidations.append((line, reason))

    def on_l1_eviction(self, line):
        self.evictions.append(line)


class TraceReplayer:
    """Drives one counterexample trace through a fresh hierarchy."""

    #: Cycle budget per replayed request; a blown budget is a deadlock.
    MAX_CYCLES_PER_STEP = 100_000

    def __init__(self, cores=2, lines=1):
        self.num_cores = max(2, cores)
        self.num_lines = lines
        self.params = SystemParams(num_cores=self.num_cores)
        self.kernel = SimKernel()
        self.space = AddressSpace()
        self.image = MemoryImage(self.space)
        self.counters = Counters()
        self.hierarchy = CacheHierarchy(
            self.params, self.kernel, self.image, self.counters
        )
        self.cores = [_StubCore() for _ in range(self.num_cores)]
        for i, core in enumerate(self.cores):
            self.hierarchy.attach_core(i, core)
        self.llc_sbs = [
            LLCSpeculativeBuffer(32) for _ in range(self.num_cores)
        ]
        self.hierarchy.set_llc_sbs(self.llc_sbs)
        self._seq = itertools.count(1)
        self._epochs = [0] * self.num_cores
        self._spec_slots = {}  # (core, line) -> (lq_index, epoch)
        self._next_lq = [0] * self.num_cores
        self._last_store = {}  # line index -> value
        self._store_value = itertools.count(0x51)
        self.steps_replayed = 0

    # ----------------------------------------------------------- geometry

    def line_addr(self, line_index):
        return _LINE_BASE + line_index * _LINE_STRIDE

    # ------------------------------------------------------------ driving

    def _submit(self, core, line_index, kind, value=0, lq_index=0, epoch=0):
        outcome = {}
        start = self.kernel.cycle
        req = MemRequest(
            core_id=core,
            addr=self.line_addr(line_index),
            size=8,
            kind=kind,
            seq=next(self._seq),
            lq_index=lq_index,
            epoch=epoch,
            store_value=value,
            on_complete=lambda r: outcome.setdefault("result", r),
        )
        self.hierarchy.submit(req)
        self.kernel.run(max_cycles=start + self.MAX_CYCLES_PER_STEP)
        if "result" not in outcome:
            raise ReplayError(
                f"{kind.value} by core {core} to line {line_index} never "
                "completed: the live hierarchy deadlocked"
            )
        return outcome["result"]

    def _visible_snapshot(self, line_index):
        """Observer-visible state a Spec-GetS must not change."""
        line = self.space.line_of(self.line_addr(line_index))
        bank = self.hierarchy.bank_of(line)
        dentry = self.hierarchy.dirs[bank].entry(line)
        return (
            tuple(
                self.hierarchy.l1_state(c, self.line_addr(line_index))
                for c in range(self.num_cores)
            ),
            self.hierarchy.l2[bank].contains(line),
            None
            if dentry is None
            else (dentry.owner, tuple(sorted(dentry.sharers))),
        )

    def _force_l1_evict(self, core, line_index):
        line = self.space.line_of(self.line_addr(line_index))
        victim = self.hierarchy.l1s[core].invalidate(line)
        if victim is not None:
            # through the real eviction path: directory notify + write-back
            self.hierarchy._handle_l1_eviction(
                core, victim, TrafficCategory.NORMAL
            )

    def _force_l2_evict(self, line_index):
        line = self.space.line_of(self.line_addr(line_index))
        bank = self.hierarchy.bank_of(line)
        victim = self.hierarchy.l2[bank].invalidate(line)
        if victim is None:
            return
        directory = self.hierarchy.dirs[bank]
        dentry = directory.entry(line)
        if dentry is not None:
            # inclusive recall of every L1 copy, as _fill_l2 does on a
            # capacity eviction
            holders = set(dentry.sharers)
            if dentry.owner is not None:
                holders.add(dentry.owner)
            for core_id in sorted(holders):
                self.hierarchy._deliver_invalidation(
                    core_id,
                    line,
                    self.kernel.cycle + 1,
                    TrafficCategory.NORMAL,
                    "l2_evict",
                )
            directory.drop(line)
        self.hierarchy._purge_llc_sbs(line, except_core=None)
        self.kernel.run(max_cycles=self.kernel.cycle + self.MAX_CYCLES_PER_STEP)

    # ------------------------------------------------------------- replay

    def step(self, label):
        """Replay one trace label; raises ReplayError on divergence."""
        verb, core, line, _rest = parse_label(label)
        if verb in _ASYNC_VERBS:
            return
        if verb == "issue_load":
            self._submit(core, line, RequestKind.LOAD)
        elif verb == "issue_store":
            value = next(self._store_value)
            self._submit(core, line, RequestKind.STORE, value=value)
            self._last_store[line] = value
        elif verb == "issue_spec":
            before = self._visible_snapshot(line)
            lq_index = self._next_lq[core]
            self._next_lq[core] += 1
            self._spec_slots[(core, line)] = (lq_index, self._epochs[core])
            self._submit(
                core,
                line,
                RequestKind.SPEC_LOAD,
                lq_index=lq_index,
                epoch=self._epochs[core],
            )
            after = self._visible_snapshot(line)
            if after != before:
                raise ReplayError(
                    f"Spec-GetS by core {core} changed visible state on "
                    f"line {line}: {before} -> {after}"
                )
        elif verb == "spec_visible":
            lq_index, epoch = self._spec_slots.pop(
                (core, line), (self._next_lq[core], self._epochs[core])
            )
            self._submit(
                core,
                line,
                RequestKind.VALIDATE,
                lq_index=lq_index,
                epoch=epoch,
            )
        elif verb == "spec_squash":
            # the USL is squashed: its SB slot dies with the epoch bump;
            # no memory access is issued
            self._spec_slots.pop((core, line), None)
            self._epochs[core] += 1
        elif verb == "l1_evict":
            self._force_l1_evict(core, line)
        elif verb == "l2_evict":
            self._force_l2_evict(line)
        else:
            raise ValueError(f"unknown trace label verb: {verb!r}")
        self.steps_replayed += 1

    def finish(self):
        """Drain the kernel, then check end-state coherence invariants."""
        self.kernel.run(max_cycles=self.kernel.cycle + self.MAX_CYCLES_PER_STEP)
        self.hierarchy.check_inclusion()
        for line_index in range(self.num_lines):
            addr = self.line_addr(line_index)
            line = self.space.line_of(addr)
            states = {
                c: self.hierarchy.l1_state(c, addr)
                for c in range(self.num_cores)
            }
            readable = {
                c for c, s in states.items() if s is not MESIState.INVALID
            }
            writable = {
                c
                for c, s in states.items()
                if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
            }
            if writable and len(readable) > 1:
                raise ReplayError(
                    f"SWMR broken at quiescence on line {line_index}: "
                    f"{states}"
                )
            bank = self.hierarchy.bank_of(line)
            dentry = self.hierarchy.dirs[bank].entry(line)
            tracked = set()
            if dentry is not None:
                tracked = set(dentry.sharers)
                if dentry.owner is not None:
                    tracked.add(dentry.owner)
            untracked = readable - tracked
            if untracked:
                raise ReplayError(
                    f"directory agreement broken on line {line_index}: "
                    f"cores {sorted(untracked)} hold copies the directory "
                    "does not track"
                )
            if line_index in self._last_store:
                got = self.image.read(addr, 8)
                want = self._last_store[line_index]
                if got != want:
                    raise ReplayError(
                        f"memory image lost the last store to line "
                        f"{line_index}: read {got:#x}, expected {want:#x}"
                    )

    def replay(self, trace):
        for label in trace:
            self.step(label)
        self.finish()
        return self


def replay_trace(trace, cores=2, lines=1):
    """Replay ``trace`` on a fresh live hierarchy; returns the replayer.

    Raises :class:`ReplayError` when the unmodified simulator exhibits
    the divergence the model checker predicted only for the mutant.
    """
    replayer = TraceReplayer(cores=cores, lines=lines)
    return replayer.replay(trace)
