"""reprolint engine: AST rule framework + suppression handling.

The linter walks Python sources under ``src/repro`` and applies
simulation-hygiene rules (:mod:`.rules`).  Rules are scope-aware:

* **sim scope** — code that executes *inside* the simulated machine
  (cores, caches, coherence, NoC, kernel, workloads, ...).  Determinism
  rules (no wall-clock, no unordered set iteration, integer cycle
  arithmetic, kernel-API event scheduling) apply here.
* **host scope** — code that runs *around* the simulator (experiment
  drivers, reliability harness, this checker).  Wall-clock time and
  other host facilities are legitimate there.
* **pure scope** — the declarative protocol tables the model checker
  itself consumes.  These must stay side-effect-free.

Suppressions are inline comments with a mandatory justification::

    holders = set(entry.sharers)  # reprolint: disable=unordered-iteration -- consumed by sorted() on the next line

A suppression without a justification, or one that suppresses nothing,
is itself reported (``bad-suppression`` / ``unused-suppression``): the
waiver list must stay auditable and live.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

__all__ = [
    "Finding",
    "LintRule",
    "Suppression",
    "audit_suppressions",
    "classify_scope",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[a-z0-9,\-\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

#: Top-level ``repro`` subpackages / modules that run inside the
#: simulated machine.  Everything not listed in either scope set is
#: treated as sim scope (the conservative default).
SIM_SCOPE = frozenset(
    {
        "coherence",
        "consistency",
        "cpu",
        "invisispec",
        "mem",
        "network",
        "security",
        "sim",
        "stats",
        "workloads",
        "system.py",
        "params.py",
        "configs.py",
        "errors.py",
    }
)

#: Host-side packages: drive, measure, or verify the simulator from
#: outside simulated time.
HOST_SCOPE = frozenset(
    {
        "experiments",
        "hwmodel",
        "reliability",
        "service",
        "staticcheck",
        "analysis.py",
        "runner.py",
        "__main__.py",
    }
)

#: Side-effect-free protocol table modules (consumed by the model
#: checker; see docs/STATIC_ANALYSIS.md).
PURE_MODULES = (
    ("coherence", "protocol.py"),
    ("coherence", "mesi.py"),
    ("coherence", "messages.py"),
    ("invisispec", "lifecycle.py"),
)


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("path", "line", "col", "rule", "message")

    def __init__(self, path, line, col, rule, message):
        self.path = str(path)
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Suppression:
    """A parsed ``# reprolint: disable=...`` comment."""

    __slots__ = ("line", "rules", "justification", "used")

    def __init__(self, line, rules, justification):
        self.line = line
        self.rules = rules
        self.justification = justification
        self.used = False


class LintRule(ast.NodeVisitor):
    """Base class: a named, scope-gated AST visitor.

    Subclasses set ``name``, ``scopes`` (subset of {"sim", "host",
    "pure"}) and call :meth:`report` from their ``visit_*`` methods.
    """

    name = "abstract-rule"
    description = ""
    scopes = frozenset({"sim"})

    def __init__(self, path, scope):
        self.path = path
        self.scope = scope
        self.findings = []

    def report(self, node, message):
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, self.name, message)
        )

    def run(self, tree):
        self.visit(tree)
        return self.findings


def classify_scope(path):
    """``"sim"``, ``"host"`` or ``"pure"`` for a file under repro/."""
    parts = Path(path).parts
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return "sim"  # outside the package tree: be conservative
    rel = parts[anchor + 1 :]
    if not rel:
        return "sim"
    for pkg, mod in PURE_MODULES:
        if rel[-2:] == (pkg, mod):
            return "pure"
    head = rel[0]
    if head in HOST_SCOPE:
        return "host"
    if head in SIM_SCOPE:
        return "sim"
    return "sim"


def parse_suppressions(source):
    """Extract Suppression objects (and malformed-comment findings)."""
    suppressions = {}
    bad = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - ast parses first
        comments = []
    for lineno, comment in comments:
        if "reprolint" not in comment:
            continue
        m = _SUPPRESS_RE.search(comment)
        if m is None:
            bad.append(
                (lineno, "malformed reprolint comment (expected "
                 "'# reprolint: disable=rule -- justification')")
            )
            continue
        rules = tuple(
            r.strip() for r in m.group("rules").split(",") if r.strip()
        )
        why = m.group("why")
        if not why:
            bad.append(
                (lineno, "suppression without a justification: add "
                 "' -- <why this is safe>'")
            )
            continue
        suppressions[lineno] = Suppression(lineno, rules, why)
    return suppressions, bad


def lint_file(path, rules, source=None):
    """Lint one file; returns a list of Findings (possibly empty)."""
    path = str(path)
    if source is None:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 1,
                exc.offset or 0,
                "syntax-error",
                f"file does not parse: {exc.msg}",
            )
        ]
    scope = classify_scope(path)
    suppressions, bad_comments = parse_suppressions(source)
    findings = [
        Finding(path, lineno, 0, "bad-suppression", message)
        for lineno, message in bad_comments
    ]
    for rule_cls in rules:
        if scope not in rule_cls.scopes:
            continue
        findings.extend(rule_cls(path, scope).run(tree))
    kept = []
    for finding in findings:
        sup = suppressions.get(finding.line)
        if sup is not None and finding.rule in sup.rules:
            sup.used = True
            continue
        kept.append(finding)
    for sup in suppressions.values():
        if not sup.used:
            kept.append(
                Finding(
                    path,
                    sup.line,
                    0,
                    "unused-suppression",
                    f"suppression for {', '.join(sup.rules)} matches no "
                    "finding on this line; delete it",
                )
            )
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def iter_python_files(paths):
    """Expand files/directories into a sorted list of .py files."""
    out = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    return out


def lint_paths(paths, rules):
    """Lint every .py file under ``paths``; returns (findings, nfiles)."""
    files = iter_python_files(paths)
    findings = []
    for path in files:
        findings.extend(lint_file(path, rules))
    return findings, len(files)


def audit_suppressions(paths):
    """The live waiver list: every ``# reprolint: disable=`` comment
    under ``paths`` as ``{"path", "line", "rules", "justification"}``
    dicts in (path, line) order.

    This is the review surface for suppressions — the linter itself
    already rejects malformed or dead ones (``bad-suppression`` /
    ``unused-suppression``), so anything this returns is a deliberate,
    justified, still-active waiver.
    """
    entries = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        suppressions, _bad = parse_suppressions(source)
        for lineno in sorted(suppressions):
            sup = suppressions[lineno]
            entries.append(
                {
                    "path": str(path),
                    "line": sup.line,
                    "rules": list(sup.rules),
                    "justification": sup.justification,
                }
            )
    return entries
