"""The reprolint rule catalog (see docs/STATIC_ANALYSIS.md).

Each rule is a small AST visitor.  The catalog targets the failure
modes that silently break cycle-accurate reproducibility:

==========================  ==========================================
rule                        catches
==========================  ==========================================
``wallclock-in-sim``        wall-clock reads inside simulated code
``unseeded-random``         the process-global RNG / seedless Random()
``unordered-iteration``     iterating a set (hash order) un-sorted
``float-cycles``            float arithmetic on cycle counters
``pure-protocol``           side effects in the protocol table modules
``kernel-api-bypass``       event scheduling around SimKernel's API
``register-env-bypass``     addr_fn/compute_fn evaluation outside repro.cpu
``blocking-call-in-async``  event-loop stalls inside ``async def``
==========================  ==========================================
"""

from __future__ import annotations

import ast
from pathlib import Path

from .engine import LintRule

__all__ = ["ALL_RULES", "rule_catalog"]


def _dotted(node):
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class WallClockRule(LintRule):
    name = "wallclock-in-sim"
    description = (
        "simulated code must derive all timing from kernel.cycle; "
        "wall-clock reads make runs machine-dependent"
    )
    scopes = frozenset({"sim", "pure"})

    _CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "date.today",
            "datetime.date.today",
        }
    )

    def visit_Call(self, node):
        dotted = _dotted(node.func)
        if dotted in self._CLOCK_CALLS:
            self.report(
                node,
                f"wall-clock read {dotted}() in simulated code; use "
                "kernel.cycle (simulated time) instead",
            )
        self.generic_visit(node)


class UnseededRandomRule(LintRule):
    name = "unseeded-random"
    description = (
        "all randomness must flow from an explicit seed so runs are "
        "reproducible bit-for-bit"
    )
    scopes = frozenset({"sim", "host", "pure"})

    def visit_Call(self, node):
        dotted = _dotted(node.func)
        if dotted is not None:
            if dotted == "random.Random" or dotted.endswith(".Random"):
                if not node.args and not node.keywords:
                    self.report(
                        node,
                        "Random() without a seed falls back to OS entropy; "
                        "pass an explicit seed",
                    )
            elif dotted.startswith("random."):
                self.report(
                    node,
                    f"{dotted}() uses the process-global RNG; construct a "
                    "seeded random.Random(seed) instead",
                )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                self.report(
                    node,
                    f"{dotted}() uses numpy's global RNG; use a seeded "
                    "Generator (np.random.default_rng(seed))",
                )
        self.generic_visit(node)


class UnorderedIterationRule(LintRule):
    name = "unordered-iteration"
    description = (
        "set iteration order follows the hash seed; walking a set in "
        "cycle-affecting code must go through sorted()"
    )
    scopes = frozenset({"sim"})

    #: Attributes known (repo-wide) to be set-typed.
    _SET_ATTRS = frozenset({"sharers"})

    def _is_set_expr(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Attribute) and node.attr in self._SET_ATTRS:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: a | b, a - b, ... is a set if either side is
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        return False

    def _check_iter(self, iter_node):
        if self._is_set_expr(iter_node):
            self.report(
                iter_node,
                "iterating a set directly; wrap in sorted(...) so the "
                "walk order cannot depend on PYTHONHASHSEED",
            )

    def visit_For(self, node):
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node):
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node):
        # list(a_set) / tuple(a_set) freeze the hash order into a sequence
        dotted = _dotted(node.func)
        if dotted in ("list", "tuple") and node.args:
            if self._is_set_expr(node.args[0]):
                self.report(
                    node,
                    f"{dotted}() over a set freezes hash order into a "
                    "sequence; use sorted(...)",
                )
        self.generic_visit(node)


class FloatCyclesRule(LintRule):
    name = "float-cycles"
    description = (
        "cycle counters are integers; true division or float() on them "
        "drifts and breaks bit-identical stats"
    )
    scopes = frozenset({"sim"})

    _HINTS = ("cycle", "cycles")

    def _mentions_cycles(self, node):
        for sub in ast.walk(node):
            ident = None
            if isinstance(sub, ast.Name):
                ident = sub.id
            elif isinstance(sub, ast.Attribute):
                ident = sub.attr
            if ident is not None and any(
                h in ident.lower() for h in self._HINTS
            ):
                return True
        return False

    def visit_BinOp(self, node):
        if isinstance(node.op, ast.Div) and (
            self._mentions_cycles(node.left)
            or self._mentions_cycles(node.right)
        ):
            self.report(
                node,
                "true division on a cycle quantity produces a float; use "
                "// (or move the ratio to host-side analysis)",
            )
        self.generic_visit(node)

    def visit_Call(self, node):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
            and self._mentions_cycles(node.args[0])
        ):
            self.report(
                node, "float() on a cycle quantity; keep cycle math integral"
            )
        self.generic_visit(node)


class PureProtocolRule(LintRule):
    name = "pure-protocol"
    description = (
        "the declarative protocol tables are shared with the model "
        "checker and must stay side-effect-free: no stats, no I/O, no "
        "kernel access"
    )
    scopes = frozenset({"pure"})

    _BANNED_NAMES = frozenset({"counters", "stats", "kernel"})
    _BANNED_CALLS = frozenset({"print", "open"})

    def visit_Attribute(self, node):
        if isinstance(node.value, ast.Name) and node.value.id in self._BANNED_NAMES:
            self.report(
                node,
                f"reference to '{node.value.id}' in a pure protocol table "
                "module; tables must not touch stats or the kernel",
            )
        if node.attr == "bump":
            self.report(
                node, "stats mutation (.bump) in a pure protocol table module"
            )
        self.generic_visit(node)

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and node.func.id in self._BANNED_CALLS:
            self.report(
                node,
                f"{node.func.id}() in a pure protocol table module",
            )
        self.generic_visit(node)

    def visit_Import(self, node):
        for alias in node.names:
            if "stats" in alias.name.split("."):
                self.report(
                    node, f"import of {alias.name} in a pure protocol module"
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module and "stats" in node.module.split("."):
            self.report(
                node, f"import from {node.module} in a pure protocol module"
            )
        self.generic_visit(node)


class KernelApiBypassRule(LintRule):
    name = "kernel-api-bypass"
    description = (
        "events must be scheduled through SimKernel.schedule/schedule_at "
        "(fault hooks, past-cycle clamping); direct EventQueue access "
        "bypasses both"
    )
    scopes = frozenset({"sim"})

    #: Files that *are* the kernel/event API.
    _EXEMPT = (("sim", "kernel.py"), ("sim", "events.py"))

    def __init__(self, path, scope):
        super().__init__(path, scope)
        parts = Path(path).parts
        self._exempt = any(parts[-2:] == e for e in self._EXEMPT)

    def visit_Call(self, node):
        if not self._exempt:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("schedule", "run_at")
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "events"
            ):
                self.report(
                    node,
                    "scheduling directly on an EventQueue; go through "
                    "kernel.schedule()/schedule_at()",
                )
            if isinstance(func, ast.Name) and func.id == "EventQueue":
                self.report(
                    node,
                    "EventQueue constructed outside repro.sim; the kernel "
                    "owns the event queue",
                )
        self.generic_visit(node)


class RegisterEnvBypassRule(LintRule):
    name = "register-env-bypass"
    description = (
        "MicroOp addr_fn/compute_fn/store_value_fn lambdas are pipeline "
        "semantics: evaluating them outside repro.cpu bypasses the "
        "register environment (operand readiness, squash state) and can "
        "silently fork architectural state"
    )
    scopes = frozenset({"sim", "host"})

    _FN_ATTRS = frozenset({"addr_fn", "compute_fn", "store_value_fn"})
    #: The pipeline itself owns these evaluations.
    _EXEMPT_DIR = "cpu"

    def __init__(self, path, scope):
        super().__init__(path, scope)
        parts = Path(path).parts
        self._exempt = len(parts) >= 2 and parts[-2] == self._EXEMPT_DIR

    def visit_Call(self, node):
        if not self._exempt:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._FN_ATTRS:
                self.report(
                    node,
                    f"direct {func.attr}(...) evaluation outside repro.cpu; "
                    "the pipeline's register environment is the only sound "
                    "evaluation context (audited analysis sites may "
                    "suppress with justification)",
                )
        self.generic_visit(node)


class BlockingCallInAsyncRule(LintRule):
    name = "blocking-call-in-async"
    description = (
        "a blocking call inside 'async def' stalls the event loop for "
        "every connected client (the job server is single-threaded); "
        "use the asyncio equivalent or hand the work to an executor"
    )
    scopes = frozenset({"host"})

    _SLEEPS = frozenset({"time.sleep"})
    _FILE_IO = frozenset({"open", "io.open"})
    _SOCKET_CALLS = frozenset(
        {
            "socket.socket",
            "socket.create_connection",
            "socket.getaddrinfo",
            "socket.gethostbyname",
        }
    )
    #: raw-socket methods that block; the asyncio stream API has no
    #: methods by these names, so any un-awaited call is suspect.
    _SOCKET_METHODS = frozenset(
        {"accept", "connect", "recv", "recv_into", "recvfrom", "sendall"}
    )

    def visit_AsyncFunctionDef(self, node):
        for stmt in node.body:
            self._walk(stmt)
        # decorators and defaults evaluate synchronously at def time
        for extra in node.decorator_list:
            self.generic_visit(extra)

    def _walk(self, node):
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return  # sync helper: typically shipped to an executor
        if isinstance(node, ast.AsyncFunctionDef):
            for stmt in node.body:
                self._walk(stmt)
            return
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Call):
                self._check_call(value, awaited=True)
                for child in ast.iter_child_nodes(value):
                    self._walk(child)
            else:
                self._walk(value)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, awaited=False)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _check_call(self, node, awaited):
        dotted = _dotted(node.func)
        if dotted in self._SLEEPS:
            self.report(
                node,
                "time.sleep() inside an async function freezes the whole "
                "event loop; await asyncio.sleep(...) instead",
            )
        elif dotted in self._FILE_IO:
            self.report(
                node,
                "blocking file IO (open) inside an async function; do the "
                "IO before entering the coroutine or via "
                "loop.run_in_executor",
            )
        elif dotted in self._SOCKET_CALLS:
            self.report(
                node,
                f"blocking socket call {dotted}() inside an async "
                "function; use asyncio streams "
                "(open_connection/start_server)",
            )
        elif (
            not awaited
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SOCKET_METHODS
        ):
            self.report(
                node,
                f"un-awaited .{node.func.attr}() inside an async function "
                "looks like a blocking raw-socket operation; use the "
                "asyncio stream API (or await the coroutine)",
            )


ALL_RULES = (
    WallClockRule,
    UnseededRandomRule,
    UnorderedIterationRule,
    FloatCyclesRule,
    PureProtocolRule,
    KernelApiBypassRule,
    RegisterEnvBypassRule,
    BlockingCallInAsyncRule,
)


def rule_catalog():
    """``{name: (description, scopes)}`` for docs and ``--list-rules``."""
    return {
        rule.name: (rule.description, tuple(sorted(rule.scopes)))
        for rule in ALL_RULES
    }
