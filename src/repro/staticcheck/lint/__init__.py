"""reprolint: the simulation-hygiene linter (engine + rule catalog)."""

from .engine import (
    Finding,
    LintRule,
    audit_suppressions,
    classify_scope,
    iter_python_files,
    lint_file,
    lint_paths,
)
from .rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintRule",
    "audit_suppressions",
    "classify_scope",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "rule_catalog",
]


def run_lint(paths, rules=ALL_RULES):
    """Lint ``paths`` with the full catalog; returns (findings, nfiles)."""
    return lint_paths(paths, rules)
