"""reprolint reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

__all__ = ["render_text", "render_json"]


def render_text(findings, nfiles):
    """GCC-style ``path:line:col: rule: message`` lines + a summary."""
    lines = [repr(f) if False else _line(f) for f in findings]
    if findings:
        lines.append("")
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {nfiles} file(s)"
    )
    return "\n".join(lines)


def _line(finding):
    return (
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule}: {finding.message}"
    )


def render_json(findings, nfiles):
    return json.dumps(
        {
            "files": nfiles,
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )
