"""Network-on-chip latency and traffic model.

Latency: ``hop_latency`` cycles per mesh hop (X-Y routing).  Traffic: the
paper's Figures 6 and 8 report "total number of bytes transmitted between
caches, or between cache and main memory", broken into the bytes induced by
speculative loads (SpecLoad), by exposures/validations (Expose/Validate),
and by everything else.  The NoC tags every message with one of those
:class:`TrafficCategory` values and accumulates bytes per category; a
bytes*hops counter is kept as well for link-utilization ablations.
"""

from __future__ import annotations

import enum

from ..reliability.faults import DROPPED_MESSAGE_DELAY
from .topology import MeshTopology


class TrafficCategory(enum.Enum):
    """Breakdown used by Figures 6 and 8."""

    NORMAL = "normal"
    SPECLOAD = "specload"
    EXPOSE_VALIDATE = "expose_validate"


class NoC:
    """Mesh interconnect: computes delays, accounts traffic."""

    def __init__(self, params, faults=None):
        self.params = params
        self.topology = MeshTopology(params.mesh_cols, params.mesh_rows)
        self.hop_latency = params.hop_latency
        self.control_bytes = params.control_message_bytes
        self.data_bytes = params.data_message_bytes
        self.bytes_by_category = {cat: 0 for cat in TrafficCategory}
        self.byte_hops = 0
        self.messages = 0
        #: Optional FaultInjector; consulted per message for the
        #: ``noc.drop`` and ``noc.delay`` sites.
        self.faults = faults
        self.stat_dropped = 0
        self.stat_delayed = 0

    def delay(self, src_node, dst_node):
        """One-way latency in cycles between two mesh nodes."""
        return self.topology.hops(src_node, dst_node) * self.hop_latency

    def round_trip(self, src_node, dst_node):
        return 2 * self.delay(src_node, dst_node)

    def send(self, src_node, dst_node, is_data, category):
        """Account one message; returns its one-way latency in cycles."""
        size = self.data_bytes if is_data else self.control_bytes
        hops = self.topology.hops(src_node, dst_node)
        self.bytes_by_category[category] += size
        self.byte_hops += size * hops
        self.messages += 1
        latency = hops * self.hop_latency
        if self.faults is not None:
            # A dropped message never arrives: model as a delay beyond any
            # sane cycle budget, so the dependent transaction stalls until
            # the watchdog raises SimTimeoutError.
            if self.faults.fire("noc.drop") is not None:
                self.stat_dropped += 1
                return DROPPED_MESSAGE_DELAY
            action = self.faults.fire("noc.delay")
            if action is not None:
                self.stat_delayed += 1
                latency += action.extra
        return latency

    @property
    def total_bytes(self):
        return sum(self.bytes_by_category.values())

    def traffic_breakdown(self):
        """Bytes per category, keyed by category value string."""
        return {cat.value: count for cat, count in self.bytes_by_category.items()}

    def reset_stats(self):
        self.bytes_by_category = {cat: 0 for cat in TrafficCategory}
        self.byte_hops = 0
        self.messages = 0
