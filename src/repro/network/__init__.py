"""On-chip network: mesh topology, latency, and traffic accounting."""

from .noc import NoC, TrafficCategory
from .topology import MeshTopology

__all__ = ["NoC", "TrafficCategory", "MeshTopology"]
