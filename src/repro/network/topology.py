"""Mesh topology (Table IV: 4x2 mesh, 128-bit links, 1 cycle per hop).

Cores and L2 banks are co-located: core *i* and bank *i* sit at node *i*,
numbered row-major.  The memory controller sits at node 0.
"""

from __future__ import annotations

from ..errors import ConfigError


class MeshTopology:
    """Row-major 2D mesh with X-Y routing distances."""

    def __init__(self, cols, rows):
        if cols <= 0 or rows <= 0:
            raise ConfigError(f"invalid mesh {cols}x{rows}")
        self.cols = cols
        self.rows = rows

    @property
    def num_nodes(self):
        return self.cols * self.rows

    def coords(self, node):
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} outside {self.cols}x{self.rows} mesh")
        return node % self.cols, node // self.cols

    def hops(self, src, dst):
        """Manhattan (X-Y routed) hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def max_hops(self):
        return (self.cols - 1) + (self.rows - 1)

    def route(self, src, dst):
        """Node sequence of the X-Y route (inclusive of endpoints)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [(sx, sy)]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            path.append((x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append((x, y))
        return [py * self.cols + px for px, py in path]
