"""Derived metrics over :class:`~repro.system.RunResult`.

These are the quantities the paper's prose quotes when explaining its
results — misses per kilo-instruction, squash rates, validation/exposure
splits, traffic per instruction — packaged as plain functions so notebooks
and tests don't re-derive them from raw counters.
"""

from __future__ import annotations

_SQUASH_REASONS = (
    "branch",
    "consistency",
    "validation_fail",
    "store_alias",
    "interrupt",
    "exception",
)


def mpki(result, level="l1"):
    """Data-cache misses per kilo-instruction at ``l1`` or ``l2``."""
    misses = sum(
        result.count(f"hierarchy.{level}_misses.{kind}")
        for kind in ("load", "store")
    )
    return 1000.0 * misses / max(result.instructions, 1)


def branch_mispredict_rate(result):
    """Mispredictions per resolved branch."""
    return result.count("core.branch_mispredicts") / max(
        result.count("core.branches_resolved"), 1
    )


def squashes_per_million(result, reasons=_SQUASH_REASONS):
    """Total pipeline squashes per million retired instructions."""
    total = sum(result.count(f"core.squashes.{r}") for r in reasons)
    return 1e6 * total / max(result.instructions, 1)


def squash_breakdown(result):
    """Fraction of squashes per reason (only nonzero reasons included)."""
    counts = {
        reason: result.count(f"core.squashes.{reason}")
        for reason in _SQUASH_REASONS
    }
    total = sum(counts.values())
    if not total:
        return {}
    return {
        reason: count / total for reason, count in counts.items() if count
    }


def traffic_per_kiloinstruction(result):
    """NoC bytes per kilo-instruction."""
    return 1000.0 * result.traffic_bytes / max(result.instructions, 1)


def visibility_split(result):
    """(exposures, L1-hit validations, L1-miss validations) fractions."""
    exposures = result.count("invisispec.exposures")
    val_hit = result.count("invisispec.validations_l1_hit")
    val_miss = result.count("invisispec.validations_l1_miss")
    total = exposures + val_hit + val_miss
    if not total:
        return (0.0, 0.0, 0.0)
    return (exposures / total, val_hit / total, val_miss / total)


def usl_fraction(result):
    """Fraction of performed loads that were unsafe speculative loads."""
    usls = result.count("invisispec.usls")
    loads = result.count("core.loads_performed")
    return usls / max(loads, 1)


def tlb_miss_rate(result):
    """D-TLB misses per lookup."""
    hits = result.count("tlb.hits")
    misses = result.count("tlb.misses")
    return misses / max(hits + misses, 1)


def summarize(result):
    """A one-stop metric dictionary for reports and notebooks."""
    exposures, val_hit, val_miss = visibility_split(result)
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "l1_mpki": mpki(result, "l1"),
        "l2_mpki": mpki(result, "l2"),
        "branch_mispredict_rate": branch_mispredict_rate(result),
        "squashes_per_million": squashes_per_million(result),
        "squash_breakdown": squash_breakdown(result),
        "traffic_bytes": result.traffic_bytes,
        "traffic_per_ki": traffic_per_kiloinstruction(result),
        "tlb_miss_rate": tlb_miss_rate(result),
        "usl_fraction": usl_fraction(result),
        "exposure_fraction": exposures,
        "validation_l1_hit_fraction": val_hit,
        "validation_l1_miss_fraction": val_miss,
    }
