"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them as aligned ASCII tables.
"""

from __future__ import annotations


def _render_cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_grouped_bars(labels, series, title=None, width=40):
    """ASCII bar chart: one group per label, one bar per series entry.

    ``series`` maps series name -> list of values aligned with ``labels``.
    Used to echo the paper's bar figures (Figs. 4, 6, 7, 8) in text form.
    """
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=1.0,
    )
    scale = width / peak if peak else 1.0
    name_width = max(len(name) for name in series)
    for i, label in enumerate(labels):
        lines.append(label)
        for name, values in series.items():
            value = values[i]
            if value is None:
                continue
            bar = "#" * max(1, int(value * scale))
            lines.append(f"  {name.ljust(name_width)} {value:6.3f} {bar}")
    return "\n".join(lines)
