"""Statistics collection and report formatting."""

from .counters import Counters
from .histogram import LatencyHistogram
from .report import format_table

__all__ = ["Counters", "LatencyHistogram", "format_table"]
