"""Fixed-bucket latency histograms.

Used to characterize validation/exposure service latencies (the reason
"validation stalls are negligible" in the paper is that the distribution
is dominated by L1-hit-latency validations — a claim a histogram shows
directly).
"""

from __future__ import annotations


class LatencyHistogram:
    """Histogram over half-open latency buckets ``[edge[i], edge[i+1])``."""

    DEFAULT_EDGES = (0, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(self, edges=DEFAULT_EDGES):
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges))  # last bucket = overflow
        self.total = 0
        self.sum = 0
        self.max = 0

    def record(self, latency):
        self.total += 1
        self.sum += latency
        if latency > self.max:
            self.max = latency
        for i in range(len(self.edges) - 1):
            if self.edges[i] <= latency < self.edges[i + 1]:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.total if self.total else 0.0

    def fraction_below(self, threshold):
        """Fraction of samples strictly below ``threshold`` (bucket-exact
        when the threshold is a bucket edge)."""
        if not self.total:
            return 0.0
        below = 0
        for i in range(len(self.edges) - 1):
            if self.edges[i + 1] <= threshold:
                below += self.counts[i]
        return below / self.total

    def buckets(self):
        """[(label, count), ...] including the overflow bucket."""
        out = []
        for i in range(len(self.edges) - 1):
            out.append((f"[{self.edges[i]},{self.edges[i + 1]})",
                        self.counts[i]))
        out.append((f">={self.edges[-1]}", self.counts[-1]))
        return out

    def format(self, width=30):
        peak = max(self.counts) or 1
        lines = []
        for label, count in self.buckets():
            bar = "#" * int(width * count / peak)
            lines.append(f"{label:>12} {count:>8} {bar}")
        lines.append(f"{'mean':>12} {self.mean:8.1f}  (n={self.total}, "
                     f"max={self.max})")
        return "\n".join(lines)
