"""Hierarchical event counters.

A :class:`Counters` object is a flat map of dotted counter names to integer
counts, with helpers for incrementing, ratios, and merging the counters of
several cores into one aggregate.  Every simulator component increments into
the same object so a run's full characterization (Table VI) falls out of one
dictionary.
"""

from __future__ import annotations

from collections import defaultdict


class Counters:
    """Named integer counters with dotted-namespace keys."""

    def __init__(self):
        self._counts = defaultdict(int)

    def bump(self, name, amount=1):
        self._counts[name] += amount

    def set(self, name, value):
        self._counts[name] = value

    def get(self, name, default=0):
        return self._counts.get(name, default)

    def __getitem__(self, name):
        return self._counts.get(name, 0)

    def __contains__(self, name):
        return name in self._counts

    def ratio(self, numerator, denominator, default=0.0):
        """``numerator / denominator`` counters, or ``default`` if empty."""
        denom = self._counts.get(denominator, 0)
        if not denom:
            return default
        return self._counts.get(numerator, 0) / denom

    def with_prefix(self, prefix):
        """Sub-dictionary of counters under ``prefix.`` (prefix stripped)."""
        dot = prefix + "."
        return {
            key[len(dot):]: value
            for key, value in self._counts.items()
            if key.startswith(dot)
        }

    def merge(self, other):
        """Add another Counters object into this one."""
        for key, value in other._counts.items():
            self._counts[key] += value
        return self

    def as_dict(self):
        return dict(self._counts)

    def __repr__(self):
        return f"Counters({len(self._counts)} keys)"
