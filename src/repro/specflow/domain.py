"""Abstract value domain for the speculative taint analysis.

The attack programs compute addresses with ordinary Python lambdas over a
register environment (``addr_fn=lambda env: B + 64 * (env.get("v", 0) &
0xFF)``).  Rather than parse those lambdas, specflow *executes* them over
an abstract environment whose reads return :class:`AbstractValue`
objects: numbers that remember which taint sources flowed into them and
along which chain of operations.  Every arithmetic/bitwise operator an
address computation can use is overloaded to propagate taint, so the
concrete lambda doubles as its own transfer function.

An operation the domain cannot model (indexing a tainted value into a
host-side table, float conversion, comparisons used for control flow
inside the lambda) raises :class:`AbstractionError`, which the analyzer
turns into an ``UNKNOWN`` classification — never a silent ``SAFE``.
"""

from __future__ import annotations

__all__ = ["AbstractionError", "AbstractValue", "TaintEnv"]


class AbstractionError(Exception):
    """The abstract domain cannot model an operation soundly."""


class AbstractValue:
    """A concrete integer plus the taint that flowed into it.

    ``taints`` is a frozenset of source label strings; ``chain`` is the
    witness — a tuple of step descriptors (dicts) recording how the taint
    reached this value, ending at the op that produced it.  The concrete
    component uses the source op's *architectural* value when one is
    known, so in-bounds control flow still evaluates correctly.
    """

    __slots__ = ("value", "taints", "chain")

    def __init__(self, value=0, taints=frozenset(), chain=()):
        self.value = int(value)
        self.taints = frozenset(taints)
        self.chain = tuple(chain)

    @property
    def tainted(self):
        return bool(self.taints)

    def with_step(self, step):
        """This value after passing through one more op."""
        return AbstractValue(self.value, self.taints, self.chain + (step,))

    # ------------------------------------------------------------- combining

    @staticmethod
    def _lift(other):
        if isinstance(other, AbstractValue):
            return other
        if isinstance(other, bool) or not isinstance(other, int):
            raise AbstractionError(
                f"cannot lift {type(other).__name__} into the taint domain"
            )
        return AbstractValue(other)

    def _combine(self, other, value):
        other = self._lift(other)
        # Witness chains merge deterministically: keep the left operand's
        # chain when it carries taint (Python evaluates operands left to
        # right, so "left" is stable), else the right's.
        chain = self.chain if self.taints else other.chain
        return AbstractValue(value, self.taints | other.taints, chain)

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other):
        return self._combine(other, self.value + self._lift(other).value)

    def __radd__(self, other):
        return self._lift(other).__add__(self)

    def __sub__(self, other):
        return self._combine(other, self.value - self._lift(other).value)

    def __rsub__(self, other):
        return self._lift(other).__sub__(self)

    def __mul__(self, other):
        return self._combine(other, self.value * self._lift(other).value)

    def __rmul__(self, other):
        return self._lift(other).__mul__(self)

    def __floordiv__(self, other):
        rhs = self._lift(other)
        if rhs.value == 0:
            raise AbstractionError("division by an (abstract) zero")
        return self._combine(other, self.value // rhs.value)

    def __rfloordiv__(self, other):
        return self._lift(other).__floordiv__(self)

    def __mod__(self, other):
        rhs = self._lift(other)
        if rhs.value == 0:
            raise AbstractionError("modulo by an (abstract) zero")
        return self._combine(other, self.value % rhs.value)

    def __rmod__(self, other):
        return self._lift(other).__mod__(self)

    def __and__(self, other):
        return self._combine(other, self.value & self._lift(other).value)

    def __rand__(self, other):
        return self._lift(other).__and__(self)

    def __or__(self, other):
        return self._combine(other, self.value | self._lift(other).value)

    def __ror__(self, other):
        return self._lift(other).__or__(self)

    def __xor__(self, other):
        return self._combine(other, self.value ^ self._lift(other).value)

    def __rxor__(self, other):
        return self._lift(other).__xor__(self)

    def __lshift__(self, other):
        return self._combine(other, self.value << self._lift(other).value)

    def __rlshift__(self, other):
        return self._lift(other).__lshift__(self)

    def __rshift__(self, other):
        return self._combine(other, self.value >> self._lift(other).value)

    def __rrshift__(self, other):
        return self._lift(other).__rshift__(self)

    def __neg__(self):
        return AbstractValue(-self.value, self.taints, self.chain)

    def __invert__(self):
        return AbstractValue(~self.value, self.taints, self.chain)

    # ------------------------------------------------- explicitly unsupported

    def __index__(self):
        # Using a possibly-tainted value as a host-side index (table
        # lookups, bytes(), range()) would let taint escape the domain.
        raise AbstractionError(
            "abstract value used as a concrete index; cannot track taint "
            "through host-side table lookups"
        )

    def __bool__(self):
        # Branching on a tainted value inside an addr_fn would make the
        # evaluated path secret-dependent — exactly what the analysis must
        # not silently follow one arm of.
        raise AbstractionError(
            "abstract value used in a host-side branch condition"
        )

    def __eq__(self, other):
        raise AbstractionError("abstract values cannot be compared")

    def __hash__(self):  # pragma: no cover - __eq__ raises first in practice
        raise AbstractionError("abstract values are unhashable")

    def __repr__(self):
        tag = "+".join(sorted(self.taints)) if self.taints else "clean"
        return f"AbstractValue(0x{self.value:x}, {tag})"


class TaintEnv:
    """The abstract register environment handed to ``addr_fn``/``compute_fn``.

    Mimics the dict interface the pipeline's ``core.env`` provides
    (``env.get(reg, default)`` and ``env[reg]``); reads of unwritten
    registers return the lifted default.  Unknown dict operations raise
    :class:`AbstractionError` so new idioms surface as UNKNOWN rather
    than wrong answers.
    """

    __slots__ = ("_regs",)

    def __init__(self, regs=None):
        self._regs = dict(regs or {})

    def get(self, reg, default=0):
        if reg in self._regs:
            return self._regs[reg]
        return AbstractValue._lift(default)

    def __getitem__(self, reg):
        if reg not in self._regs:
            raise AbstractionError(f"read of unwritten register {reg!r}")
        return self._regs[reg]

    def __contains__(self, reg):
        return reg in self._regs

    def write(self, reg, value):
        if not isinstance(value, AbstractValue):
            value = AbstractValue._lift(value)
        self._regs[reg] = value

    def snapshot(self):
        """An independent copy (for wrong-path arm evaluation)."""
        return TaintEnv(self._regs)

    def __getattr__(self, name):  # pragma: no cover - defensive
        raise AbstractionError(f"unsupported environment operation {name!r}")
