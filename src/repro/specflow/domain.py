"""Abstract value domain for the speculative taint analysis.

The attack programs compute addresses with ordinary Python lambdas over a
register environment (``addr_fn=lambda env: B + 64 * (env.get("v", 0) &
0xFF)``).  Rather than parse those lambdas, specflow *executes* them over
an abstract environment whose reads return :class:`AbstractValue`
objects: numbers that remember which taint sources flowed into them and
along which chain of operations.  Every arithmetic/bitwise operator an
address computation can use is overloaded to propagate taint, so the
concrete lambda doubles as its own transfer function.

v2 layers two refinements on the pure taint domain:

* a **mask/interval lattice** (:class:`ValueSet`): each value carries an
  over-approximation of the set of integers it can take *as the secret
  varies* — a ``[lo, hi]`` interval plus a possibly-set-bits mask.
  Masking, shifting, scaling and adding narrow it; the analyzer uses it
  to prove that a tainted address reaches only one cache line (a
  value-killed transmit).
* **path splitting**: comparisons and truth tests on non-concrete values
  no longer abort the evaluation.  They return an :class:`AbstractBool`
  whose ``bool()`` consults a fork oracle; :func:`explore_paths` re-runs
  the lambda once per reachable decision vector and hands the analyzer
  every leaf, so branchy address math joins over all paths instead of
  collapsing to UNKNOWN.

An operation the domain still cannot model (indexing a tainted value
into a host-side table, float conversion) raises
:class:`AbstractionError`, which the analyzer turns into an ``UNKNOWN``
classification — never a silent ``SAFE``.
"""

from __future__ import annotations

__all__ = [
    "AbstractionError",
    "AbstractBool",
    "AbstractValue",
    "PathLimitError",
    "PathResult",
    "TaintEnv",
    "ValueSet",
    "explore_paths",
]


class AbstractionError(Exception):
    """The abstract domain cannot model an operation soundly."""


class PathLimitError(Exception):
    """Path splitting exceeded its exploration budget."""


# ---------------------------------------------------------------- value sets
#
# A ValueSet over-approximates the set of *non-negative* integers a value
# can take across executions that differ only in the secret: every
# representable value satisfies both ``lo <= v <= hi`` and
# ``v & ~bits == 0``.  Operations that could produce a negative or that
# the lattice cannot bound return None (= top); None absorbs.


def _mask_up(n):
    """The all-ones mask covering every bit of ``0..n``."""
    return (1 << n.bit_length()) - 1


class ValueSet:
    """Interval + possibly-set-bits over-approximation of a value."""

    __slots__ = ("lo", "hi", "bits")

    def __init__(self, lo, hi, bits=None):
        if lo < 0 or hi < lo:
            raise ValueError(f"malformed ValueSet [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.bits = _mask_up(hi) if bits is None else bits

    @classmethod
    def point(cls, value):
        """The singleton set {value}, or None for negative values."""
        if value < 0:
            return None
        return cls(value, value, _mask_up(value) & value | value)

    @classmethod
    def top_bytes(cls, size):
        """Every value a ``size``-byte load can produce."""
        hi = (1 << (8 * size)) - 1
        return cls(0, hi, hi)

    @property
    def singleton(self):
        return self.lo == self.hi

    @staticmethod
    def hull(a, b):
        """The join (smallest set covering both); None absorbs."""
        if a is None or b is None:
            return None
        return ValueSet(min(a.lo, b.lo), max(a.hi, b.hi), a.bits | b.bits)

    def __repr__(self):
        return f"ValueSet[0x{self.lo:x}, 0x{self.hi:x}, bits=0x{self.bits:x}]"


def _vs_exact(a, b, py):
    """Exact transfer when both sides are singletons (or None)."""
    if a is not None and b is not None and a.singleton and b.singleton:
        return ValueSet.point(py(a.lo, b.lo))
    return _ABSENT


_ABSENT = object()  # sentinel: "no exact result, fall through"


def _vs_add(a, b):
    if a is None or b is None:
        return None
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if a.bits & b.bits == 0:
        # No bit is possibly set on both sides: addition cannot carry.
        bits = a.bits | b.bits
    else:
        bits = _mask_up(hi)
    return ValueSet(lo, hi, bits)


def _vs_sub(a, b):
    if a is None or b is None or a.lo - b.hi < 0:
        return None
    return ValueSet(a.lo - b.hi, a.hi - b.lo)


def _vs_mul(a, b):
    if a is None or b is None:
        return None
    lo, hi = a.lo * b.lo, a.hi * b.hi
    for x, k in ((a, b), (b, a)):
        if k.singleton and k.lo > 0 and k.lo & (k.lo - 1) == 0:
            # Multiplying by a power of two shifts the bit mask.
            return ValueSet(lo, hi, x.bits * k.lo)
    return ValueSet(lo, hi)


def _vs_and(a, b):
    exact = _vs_exact(a, b, lambda x, y: x & y)
    if exact is not _ABSENT:
        return exact
    if a is None and b is None:
        return None
    bits = (a.bits if a is not None else -1) & (b.bits if b is not None else -1)
    hi = bits
    if a is not None:
        hi = min(hi, a.hi)
    if b is not None:
        hi = min(hi, b.hi)
    return ValueSet(0, hi, bits)


def _vs_or(a, b):
    if a is None or b is None:
        return None
    bits = a.bits | b.bits
    return ValueSet(max(a.lo, b.lo), min(bits, a.hi + b.hi), bits)


def _vs_xor(a, b):
    if a is None or b is None:
        return None
    bits = a.bits | b.bits
    return ValueSet(0, bits, bits)


def _vs_shl(a, b):
    if a is None or b is None or not b.singleton:
        return None
    k = b.lo
    return ValueSet(a.lo << k, a.hi << k, a.bits << k)


def _vs_shr(a, b):
    if a is None or b is None or not b.singleton:
        return None
    k = b.lo
    return ValueSet(a.lo >> k, a.hi >> k, a.bits >> k)


def _vs_mod(a, b):
    if b is None or not b.singleton or b.lo <= 0:
        return None
    m = b.lo
    if a is not None and a.hi < m:
        return a
    # Python's % with a positive modulus lands in [0, m) regardless of
    # the dividend's sign, so this holds even when ``a`` is unknown.
    return ValueSet(0, m - 1, _mask_up(m - 1))


def _vs_floordiv(a, b):
    if a is None or b is None or not b.singleton or b.lo <= 0:
        return None
    return ValueSet(a.lo // b.lo, a.hi // b.lo)


#: op key -> ValueSet transfer function (None-tolerant, sound).
_VSET_OPS = {
    "add": _vs_add,
    "sub": _vs_sub,
    "mul": _vs_mul,
    "and": _vs_and,
    "or": _vs_or,
    "xor": _vs_xor,
    "shl": _vs_shl,
    "shr": _vs_shr,
    "mod": _vs_mod,
    "floordiv": _vs_floordiv,
}


# ------------------------------------------------------------ fork oracle
#
# Path splitting works by *re-execution*: the lambda runs under an oracle
# holding a vector of forced decisions.  Each truth test on a
# non-concrete value consumes the next decision; running past the end
# raises _NeedFork, and explore_paths re-runs the lambda with the vector
# extended both ways.  Lambdas are pure over the environment (reads
# only), so re-execution is sound.

_FORK_ORACLE = None

#: decision-vector length cap: a lambda asking for more forks than this
#: on a single path is pathological (loops over abstract conditions).
_MAX_FORK_DEPTH = 16


class _NeedFork(Exception):
    """Internal: the oracle ran out of forced decisions."""

    def __init__(self, cond):
        self.cond = cond


class _ForkOracle:
    __slots__ = ("decisions", "cursor", "cond_taints", "cond_chain")

    def __init__(self, decisions):
        self.decisions = decisions
        self.cursor = 0
        self.cond_taints = set()
        self.cond_chain = ()

    def decide(self, cond):
        if cond.taints:
            self.cond_taints |= set(cond.taints)
            if not self.cond_chain and cond.chain:
                self.cond_chain = tuple(cond.chain)
        if self.cursor < len(self.decisions):
            outcome = self.decisions[self.cursor]
            self.cursor += 1
            return outcome
        if len(self.decisions) >= _MAX_FORK_DEPTH:
            raise PathLimitError(
                f"more than {_MAX_FORK_DEPTH} abstract decisions on one "
                f"evaluation path"
            )
        raise _NeedFork(cond)


class PathResult:
    """One leaf of a path-split evaluation."""

    __slots__ = ("result", "decisions", "cond_taints", "cond_chain")

    def __init__(self, result, decisions, cond_taints, cond_chain):
        self.result = result
        #: the decision vector (tuple of bool) that reached this leaf
        self.decisions = decisions
        #: taint labels of every *tainted* condition decided on the path
        self.cond_taints = cond_taints
        #: witness chain of the first tainted condition (possibly empty)
        self.cond_chain = cond_chain


def explore_paths(fn, env, max_paths=64, single_path=False):
    """Evaluate ``fn(env)`` under the fork oracle, enumerating every
    reachable decision vector (False branch first, depth-first).

    Returns the list of :class:`PathResult` leaves.  ``single_path``
    follows only the False outcome of every fork (used by the seeded
    ``fork_single_path`` analyzer weakening — deliberately unsound).
    Raises :class:`PathLimitError` past ``max_paths`` leaves and
    propagates whatever the lambda itself raises.
    """
    global _FORK_ORACLE
    leaves = []
    stack = [()]
    previous = _FORK_ORACLE
    try:
        while stack:
            prefix = stack.pop()
            oracle = _ForkOracle(list(prefix))
            _FORK_ORACLE = oracle
            try:
                result = fn(env)
            except _NeedFork:
                if not single_path:
                    stack.append(prefix + (True,))
                stack.append(prefix + (False,))
                continue
            leaves.append(
                PathResult(
                    result,
                    prefix,
                    frozenset(oracle.cond_taints),
                    oracle.cond_chain,
                )
            )
            if len(leaves) > max_paths:
                raise PathLimitError(
                    f"evaluation forked into more than {max_paths} paths"
                )
    finally:
        _FORK_ORACLE = previous
    return leaves


class AbstractBool:
    """A truth value the domain could not decide concretely.

    Carries the taint and witness chain of the compared values; its
    ``bool()`` consults the fork oracle (raising
    :class:`AbstractionError` outside a path-splitting context, which
    preserves the legacy taint-only behaviour).
    """

    __slots__ = ("taints", "chain", "note")

    def __init__(self, taints=frozenset(), chain=(), note="comparison"):
        self.taints = frozenset(taints)
        self.chain = tuple(chain)
        self.note = note

    def __bool__(self):
        if _FORK_ORACLE is None:
            raise AbstractionError(
                "abstract value used in a host-side branch condition"
            )
        return _FORK_ORACLE.decide(self)

    def __repr__(self):  # pragma: no cover - debugging aid
        tag = "+".join(sorted(self.taints)) if self.taints else "clean"
        return f"AbstractBool({self.note}, {tag})"


class AbstractValue:
    """A concrete integer plus the taint that flowed into it.

    ``taints`` is a frozenset of source label strings; ``chain`` is the
    witness — a tuple of step descriptors (dicts) recording how the taint
    reached this value, ending at the op that produced it.  The concrete
    component uses the source op's *architectural* value when one is
    known, so in-bounds control flow still evaluates correctly.

    ``vset`` is the :class:`ValueSet` over-approximation of the values
    this can take across secret-varying executions (None = unbounded);
    ``concrete`` marks values derived from constants only, whose concrete
    component is exact in every execution — those may be branched on
    directly, everything else forks.
    """

    __slots__ = ("value", "taints", "chain", "vset", "concrete")

    def __init__(self, value=0, taints=frozenset(), chain=(), vset=_ABSENT,
                 concrete=True):
        self.value = int(value)
        self.taints = frozenset(taints)
        self.chain = tuple(chain)
        self.vset = ValueSet.point(self.value) if vset is _ABSENT else vset
        # A tainted value is secret-derived, never constant-derived: it
        # must not short-circuit truth tests no matter how it was built.
        self.concrete = concrete and not self.taints

    @property
    def tainted(self):
        return bool(self.taints)

    def with_step(self, step):
        """This value after passing through one more op."""
        return AbstractValue(self.value, self.taints, self.chain + (step,),
                             vset=self.vset, concrete=self.concrete)

    # ------------------------------------------------------------- combining

    @staticmethod
    def _lift(other):
        if isinstance(other, AbstractValue):
            return other
        if isinstance(other, bool) or not isinstance(other, int):
            raise AbstractionError(
                f"cannot lift {type(other).__name__} into the taint domain"
            )
        return AbstractValue(other)

    def _combine(self, other, value, op=None):
        other = self._lift(other)
        # Witness chains merge deterministically: keep the left operand's
        # chain when it carries taint (Python evaluates operands left to
        # right, so "left" is stable), else the right's.
        chain = self.chain if self.taints else other.chain
        vset = None
        if op is not None:
            vset = _VSET_OPS[op](self.vset, other.vset)
        return AbstractValue(
            value,
            self.taints | other.taints,
            chain,
            vset=vset,
            concrete=self.concrete and other.concrete,
        )

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other):
        return self._combine(other, self.value + self._lift(other).value,
                             "add")

    def __radd__(self, other):
        return self._lift(other).__add__(self)

    def __sub__(self, other):
        return self._combine(other, self.value - self._lift(other).value,
                             "sub")

    def __rsub__(self, other):
        return self._lift(other).__sub__(self)

    def __mul__(self, other):
        return self._combine(other, self.value * self._lift(other).value,
                             "mul")

    def __rmul__(self, other):
        return self._lift(other).__mul__(self)

    def __floordiv__(self, other):
        rhs = self._lift(other)
        if rhs.value == 0:
            raise AbstractionError("division by an (abstract) zero")
        return self._combine(other, self.value // rhs.value, "floordiv")

    def __rfloordiv__(self, other):
        return self._lift(other).__floordiv__(self)

    def __mod__(self, other):
        rhs = self._lift(other)
        if rhs.value == 0:
            raise AbstractionError("modulo by an (abstract) zero")
        return self._combine(other, self.value % rhs.value, "mod")

    def __rmod__(self, other):
        return self._lift(other).__mod__(self)

    def __and__(self, other):
        return self._combine(other, self.value & self._lift(other).value,
                             "and")

    def __rand__(self, other):
        return self._lift(other).__and__(self)

    def __or__(self, other):
        return self._combine(other, self.value | self._lift(other).value,
                             "or")

    def __ror__(self, other):
        return self._lift(other).__or__(self)

    def __xor__(self, other):
        return self._combine(other, self.value ^ self._lift(other).value,
                             "xor")

    def __rxor__(self, other):
        return self._lift(other).__xor__(self)

    def __lshift__(self, other):
        return self._combine(other, self.value << self._lift(other).value,
                             "shl")

    def __rlshift__(self, other):
        return self._lift(other).__lshift__(self)

    def __rshift__(self, other):
        return self._combine(other, self.value >> self._lift(other).value,
                             "shr")

    def __rrshift__(self, other):
        return self._lift(other).__rshift__(self)

    def __neg__(self):
        vset = self.vset if self.value == 0 and self.vset is not None \
            and self.vset.singleton and self.vset.lo == 0 else None
        return AbstractValue(-self.value, self.taints, self.chain,
                             vset=vset, concrete=self.concrete)

    def __invert__(self):
        return AbstractValue(~self.value, self.taints, self.chain,
                             vset=None, concrete=self.concrete)

    # ------------------------------------------------------------ comparisons
    #
    # Concrete-vs-concrete compares decide directly; otherwise the value
    # sets may settle the outcome for *every* execution; otherwise an
    # AbstractBool defers to the fork oracle.

    def _compare(self, other, note, py, decide):
        other = self._lift(other)
        if self.concrete and other.concrete:
            return py(self.value, other.value)
        if self.vset is not None and other.vset is not None:
            decided = decide(self.vset, other.vset)
            if decided is not None:
                return decided
        taints = self.taints | other.taints
        chain = self.chain if self.taints else other.chain
        return AbstractBool(taints, chain, note=note)

    def __lt__(self, other):
        return self._compare(
            other, "lt", lambda a, b: a < b,
            lambda a, b: True if a.hi < b.lo
            else (False if a.lo >= b.hi else None),
        )

    def __le__(self, other):
        return self._compare(
            other, "le", lambda a, b: a <= b,
            lambda a, b: True if a.hi <= b.lo
            else (False if a.lo > b.hi else None),
        )

    def __gt__(self, other):
        return self._compare(
            other, "gt", lambda a, b: a > b,
            lambda a, b: True if a.lo > b.hi
            else (False if a.hi <= b.lo else None),
        )

    def __ge__(self, other):
        return self._compare(
            other, "ge", lambda a, b: a >= b,
            lambda a, b: True if a.lo >= b.hi
            else (False if a.hi < b.lo else None),
        )

    def __eq__(self, other):
        return self._compare(
            other, "eq", lambda a, b: a == b,
            lambda a, b: True if a.singleton and b.singleton and a.lo == b.lo
            else (False if a.hi < b.lo or b.hi < a.lo else None),
        )

    def __ne__(self, other):
        result = self.__eq__(other)
        if isinstance(result, bool):
            return not result
        return AbstractBool(result.taints, result.chain, note="ne")

    def __bool__(self):
        if self.concrete:
            return bool(self.value)
        if self.vset is not None:
            if self.vset.lo > 0:
                return True
            if self.vset.hi == 0:
                return False
        if _FORK_ORACLE is None:
            # Branching on a tainted value inside an addr_fn would make
            # the evaluated path secret-dependent — exactly what the
            # analysis must not silently follow one arm of.
            raise AbstractionError(
                "abstract value used in a host-side branch condition"
            )
        return _FORK_ORACLE.decide(
            AbstractBool(self.taints, self.chain, note="truth")
        )

    # ------------------------------------------------- explicitly unsupported

    def __index__(self):
        # Using a possibly-tainted value as a host-side index (table
        # lookups, bytes(), range()) would let taint escape the domain.
        raise AbstractionError(
            "abstract value used as a concrete index; cannot track taint "
            "through host-side table lookups"
        )

    def __hash__(self):
        raise AbstractionError("abstract values are unhashable")

    def __repr__(self):
        tag = "+".join(sorted(self.taints)) if self.taints else "clean"
        return f"AbstractValue(0x{self.value:x}, {tag})"


class TaintEnv:
    """The abstract register environment handed to ``addr_fn``/``compute_fn``.

    Mimics the dict interface the pipeline's ``core.env`` provides
    (``env.get(reg, default)`` and ``env[reg]``); reads of unwritten
    registers return the lifted default.  Unknown dict operations raise
    :class:`AbstractionError` so new idioms surface as UNKNOWN rather
    than wrong answers.
    """

    __slots__ = ("_regs",)

    def __init__(self, regs=None):
        self._regs = dict(regs or {})

    def get(self, reg, default=0):
        if reg in self._regs:
            return self._regs[reg]
        return AbstractValue._lift(default)

    def __getitem__(self, reg):
        if reg not in self._regs:
            raise AbstractionError(f"read of unwritten register {reg!r}")
        return self._regs[reg]

    def __contains__(self, reg):
        return reg in self._regs

    def write(self, reg, value):
        if not isinstance(value, AbstractValue):
            value = AbstractValue._lift(value)
        self._regs[reg] = value

    def snapshot(self):
        """An independent copy (for wrong-path arm evaluation)."""
        return TaintEnv(self._regs)

    def __getattr__(self, name):  # pragma: no cover - defensive
        raise AbstractionError(f"unsupported environment operation {name!r}")
