"""Speculative information-flow analysis over MicroOp programs.

``repro.specflow`` is a Spectector/oo7-style static analyzer for the
simulator's own instruction representation: it abstractly interprets the
``deps``/``addr_fn``/``compute_fn`` dataflow of a :class:`~repro.cpu.isa.
MicroOp` program under a bounded speculation window, tracks taint from
secret-labeled sources through transient (wrong-path and pre-squash)
dataflow, and classifies every static load PC as

* ``TRANSMIT`` — its address can carry tainted data into the cache
  hierarchy while the load is still unsafe-speculative;
* ``SAFE`` — provably neither;
* ``UNKNOWN`` — the abstract evaluation could not decide (e.g. an
  address lambda the abstract domain cannot model).

The report carries the taint chain as a witness, and closes the loop
into the simulator: :func:`protected_pcs` of a report feeds
:class:`~repro.invisispec.policy.SelectivePolicy` (``Scheme.SELECTIVE``),
which routes only TRANSMIT/UNKNOWN-PC loads through the InvisiSpec USL
path.  See docs/STATIC_ANALYSIS.md ("Speculative taint analysis").

Entry points::

    python -m repro.staticcheck specflow            # all programs
    python -m repro.staticcheck specflow --json
    python -m repro.staticcheck specflow --mutations
"""

from .analyzer import (
    SAFE,
    TRANSMIT,
    UNKNOWN,
    UNKNOWN_REASON_KINDS,
    LoadReport,
    ProgramReport,
    SpecFlowAnalyzer,
    analyze_program,
    analyze_programs,
    protected_pcs,
)
from .domain import AbstractValue, TaintEnv
from .programs import (
    SpecProgram,
    all_programs,
    attack_programs,
    workload_programs,
)

__all__ = [
    "AbstractValue",
    "LoadReport",
    "ProgramReport",
    "SAFE",
    "SpecFlowAnalyzer",
    "SpecProgram",
    "TRANSMIT",
    "TaintEnv",
    "UNKNOWN",
    "UNKNOWN_REASON_KINDS",
    "all_programs",
    "analyze_program",
    "analyze_programs",
    "attack_programs",
    "protected_pcs",
    "workload_programs",
]
