"""The program corpus the analyzer runs over.

Two families:

* **attack programs** — each PoC in :mod:`repro.security` exports a
  ``specflow_program()`` describing its victim code (ops + wrong-path
  arms + secret layout).  These are the analyzer's ground truth: every
  one must classify its transmitter load TRANSMIT with a witness chain
  that names the access and the transmit.
* **workload programs** — finite prefixes of the synthetic SPEC traces
  (correct path plus materialized wrong-path arms).  They touch no
  declared secrets, so every load must come out SAFE; that emptiness is
  what lets ``Scheme.SELECTIVE`` run workloads at baseline speed.
"""

from __future__ import annotations

from ..cpu import isa
from ..cpu.isa import OpKind
from ..workloads import spec_trace

__all__ = [
    "SpecProgram",
    "all_programs",
    "attack_programs",
    "workload_programs",
]


class SpecProgram:
    """A MicroOp program plus the security metadata the analysis needs.

    ``builder`` is a zero-argument callable returning ``(ops,
    wrong_paths)`` in the shape :meth:`AttackContext.run_ops` takes; it
    is re-invoked per analysis after a uid reset, so reports are
    reproducible no matter how many programs were built before.
    ``secret_ranges`` are half-open ``(lo, hi)`` byte ranges holding
    secret or privileged data.  ``expected_transmit`` maps attack model
    to the load PCs the program is *known* to leak through — the
    cross-validation oracle for tests and ``--check``.
    """

    __slots__ = (
        "name",
        "description",
        "secret_ranges",
        "expected_transmit",
        "_builder",
    )

    def __init__(self, name, builder, secret_ranges=(), description="",
                 expected_transmit=None):
        self.name = name
        self._builder = builder
        self.secret_ranges = tuple(secret_ranges)
        self.description = description
        self.expected_transmit = dict(expected_transmit or {})

    def build(self):
        """Materialize ``(ops, wrong_paths)`` with a fresh uid space."""
        isa.reset_uids()
        return self._builder()

    def secret_range_overlapping(self, addr, size):
        """The ``lo`` of the first secret range the access overlaps, or
        None.  Ranges are few (0-2 per program), so linear scan."""
        for lo, hi in self.secret_ranges:
            if addr < hi and addr + size > lo:
                return lo
        return None

    def __repr__(self):
        return f"SpecProgram({self.name!r})"


# ----------------------------------------------------------- attack corpus


def attack_programs():
    """One :class:`SpecProgram` per security PoC (exception variants
    expand to one each), in deterministic name order."""
    from ..security import (
        cross_core,
        exception_attacks,
        meltdown_style,
        spectre_v1,
        ssb,
    )

    programs = [
        spectre_v1.specflow_program(),
        meltdown_style.specflow_program(),
        ssb.specflow_program(),
        cross_core.specflow_program(),
    ]
    programs.extend(exception_attacks.specflow_programs())
    return sorted(programs, key=lambda p: p.name)


# --------------------------------------------------------- workload corpus

#: prefix length per workload program; long enough to exercise every op
#: template the generator owns (loads, stores, branches, critical
#: sections) while keeping the abstract walk instant.
_WORKLOAD_OPS = 400
#: wrong-path arm depth per branch; matches the resolve windows the
#: pipeline actually reaches.
_WORKLOAD_ARM_DEPTH = 8

#: the Figure 4 applications the workload corpus samples — one
#: control-heavy, one pointer-chasing, one streaming profile.
WORKLOAD_NAMES = ("sjeng", "mcf", "libquantum")


def _workload_builder(name, seed):
    def build():
        trace = spec_trace(name, seed=seed)
        ops = [trace.next_op() for _ in range(_WORKLOAD_OPS)]
        wrong_paths = {}
        for op in ops:
            if op.kind is not OpKind.BRANCH:
                continue
            arm = []
            for index in range(_WORKLOAD_ARM_DEPTH):
                wp = trace.wrong_path_op(op, index)
                if wp is None:
                    break
                arm.append(wp)
            if arm:
                wrong_paths[op.uid] = arm
        return ops, wrong_paths

    return build


def workload_programs(seed=0):
    """Finite-prefix SpecPrograms for the sampled SPEC applications."""
    return [
        SpecProgram(
            name=f"workload_{name}",
            builder=_workload_builder(name, seed),
            secret_ranges=(),
            description=(
                f"{_WORKLOAD_OPS}-op prefix of the '{name}' synthetic "
                f"trace with {_WORKLOAD_ARM_DEPTH}-deep wrong-path arms"
            ),
            expected_transmit={"spectre": (), "futuristic": ()},
        )
        for name in WORKLOAD_NAMES
    ]


def all_programs(seed=0):
    """The full corpus: attacks first (name order), then workloads."""
    return attack_programs() + workload_programs(seed=seed)
