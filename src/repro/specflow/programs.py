"""The program corpus the analyzer runs over.

Three families:

* **attack programs** — each PoC in :mod:`repro.security` exports a
  ``specflow_program()`` describing its victim code (ops + wrong-path
  arms + secret layout).  These are the analyzer's ground truth: every
  one must classify its transmitter load TRANSMIT with a witness chain
  that names the access and the transmit.
* **hardened programs** — victims that *touch* the secret transiently
  but provably cannot leak it, one per v2 precision layer (value
  collapse, squash-window reachability, path splitting).  Every load
  must come out SAFE with a discharge proof; the v1 pure-taint domain
  flags each of them, which is exactly the precision the selective-
  protection experiment measures.
* **workload programs** — finite prefixes of the synthetic SPEC traces
  (correct path plus materialized wrong-path arms).  They touch no
  declared secrets, so every load must come out SAFE; that emptiness is
  what lets ``Scheme.SELECTIVE`` run workloads at baseline speed.
"""

from __future__ import annotations

from ..cpu import isa
from ..cpu.isa import Expr, MicroOp, OpKind
from ..workloads import spec_trace

__all__ = [
    "SpecProgram",
    "all_programs",
    "attack_programs",
    "hardened_programs",
    "workload_programs",
]


class SpecProgram:
    """A MicroOp program plus the security metadata the analysis needs.

    ``builder`` is a zero-argument callable returning ``(ops,
    wrong_paths)`` in the shape :meth:`AttackContext.run_ops` takes; it
    is re-invoked per analysis after a uid reset, so reports are
    reproducible no matter how many programs were built before.
    ``secret_ranges`` are half-open ``(lo, hi)`` byte ranges holding
    secret or privileged data.  ``expected_transmit`` maps attack model
    to the load PCs the program is *known* to leak through — the
    cross-validation oracle for tests and ``--check``.  ``setup`` is the
    optional dynamic-environment dict (fuzz-harness shape:
    ``secret_addr``/``secret_size``/``writes``/``warm``/``flush``) that
    squash-window discharge proofs consult; without one, those proofs
    are simply unavailable.
    """

    __slots__ = (
        "name",
        "description",
        "secret_ranges",
        "expected_transmit",
        "setup",
        "_builder",
    )

    def __init__(self, name, builder, secret_ranges=(), description="",
                 expected_transmit=None, setup=None):
        self.name = name
        self._builder = builder
        self.secret_ranges = tuple(secret_ranges)
        self.description = description
        self.expected_transmit = dict(expected_transmit or {})
        self.setup = setup

    def build(self):
        """Materialize ``(ops, wrong_paths)`` with a fresh uid space."""
        isa.reset_uids()
        return self._builder()

    def secret_range_overlapping(self, addr, size):
        """The ``lo`` of the first secret range the access overlaps, or
        None.  Ranges are few (0-2 per program), so linear scan."""
        for lo, hi in self.secret_ranges:
            if addr < hi and addr + size > lo:
                return lo
        return None

    def __repr__(self):
        return f"SpecProgram({self.name!r})"


# ----------------------------------------------------------- attack corpus


def attack_programs():
    """One :class:`SpecProgram` per security PoC (exception variants
    expand to one each), in deterministic name order."""
    from ..security import (
        cross_core,
        exception_attacks,
        meltdown_style,
        spectre_v1,
        ssb,
    )

    programs = [
        spectre_v1.specflow_program(),
        meltdown_style.specflow_program(),
        ssb.specflow_program(),
        cross_core.specflow_program(),
    ]
    programs.extend(exception_attacks.specflow_programs())
    return sorted(programs, key=lambda p: p.name)


# --------------------------------------------------------- hardened corpus
#
# One curated victim per v2 precision layer, at PCs 0xA000+ so their
# verdicts never collide with an attack PoC's.  Each carries the dynamic
# ``setup`` recipe the evidence harness replays, and an all-empty
# ``expected_transmit`` oracle: the analysis must prove every load SAFE.

_H_GUARD = 0xA000_0  # guard/limit byte (distinct page per program below)
_H_SECRET = 0xA400_0  # planted secret byte
_H_ARRAY = 0xB0_0000  # transmission array (cold pages)
_H_LINE = 64


def _hardened_setup(warm_guard):
    warm = [_H_SECRET] + ([_H_GUARD] if warm_guard else [])
    flush = [] if warm_guard else [_H_GUARD]
    return {
        "secret_addr": _H_SECRET,
        "secret_size": 1,
        "writes": [],
        "warm": warm,
        "flush": flush,
    }


def _hardened_victim(pc_base, addr_fn):
    """Flushed-guard Spectre shape with ``addr_fn`` as the transmit
    address computation; the analysis must discharge the transmit."""

    def build():
        guard = MicroOp(OpKind.LOAD, pc=pc_base, addr=_H_GUARD, size=1,
                        dst="limit", label="guard")
        branch = MicroOp(OpKind.BRANCH, pc=pc_base + 0x10, taken=True,
                         deps=(1,), latency=2)
        access = MicroOp(OpKind.LOAD, pc=pc_base + 0x100, addr=_H_SECRET,
                         size=1, dst="v", label="access")
        transmit = MicroOp(OpKind.LOAD, pc=pc_base + 0x110, addr_fn=addr_fn,
                           size=1, deps=(1,), label="transmit")
        return [guard, branch], {branch.uid: [access, transmit]}

    return build


def hardened_programs():
    """The cannot-leak corpus: each program's transmit is tainted and
    transient, and each is SAFE for a different structural reason."""
    empty = {"spectre": (), "futuristic": ()}
    masked = Expr(
        ("add", ("const", _H_ARRAY),
         ("mul", ("const", _H_LINE),
          ("and", ("reg", "v", 0), ("const", 0)))),
    )
    same_line = Expr(
        ("select",
         ("gt", ("and", ("reg", "v", 0), ("const", 1)), ("const", 0)),
         ("const", _H_ARRAY + 8),
         ("const", _H_ARRAY)),
    )
    full = Expr(
        ("add", ("const", _H_ARRAY),
         ("mul", ("const", _H_LINE),
          ("and", ("reg", "v", 0), ("const", 0xFF)))),
    )
    return [
        SpecProgram(
            name="hardened_masked",
            builder=_hardened_victim(0xA000, masked),
            secret_ranges=((_H_SECRET, _H_SECRET + 1),),
            description=(
                "transmit masks the secret to zero: every reachable "
                "address sits on one line (value-collapse SAFE)"
            ),
            expected_transmit=empty,
            setup=_hardened_setup(warm_guard=False),
        ),
        SpecProgram(
            name="hardened_branchy",
            builder=_hardened_victim(0xA200, same_line),
            secret_ranges=((_H_SECRET, _H_SECRET + 1),),
            description=(
                "transmit selects between two offsets of the same cache "
                "line on a secret bit (path-split join collapses)"
            ),
            expected_transmit=empty,
            setup=_hardened_setup(warm_guard=False),
        ),
        SpecProgram(
            name="hardened_warm_window",
            builder=_hardened_victim(0xA400, full),
            secret_ranges=((_H_SECRET, _H_SECRET + 1),),
            description=(
                "full-byte transmit behind a warm guard: the branch "
                "provably squashes the arm before the TLB-cold transmit "
                "can issue (squash-window SAFE)"
            ),
            expected_transmit=empty,
            setup=_hardened_setup(warm_guard=True),
        ),
    ]


# --------------------------------------------------------- workload corpus

#: prefix length per workload program; long enough to exercise every op
#: template the generator owns (loads, stores, branches, critical
#: sections) while keeping the abstract walk instant.
_WORKLOAD_OPS = 400
#: wrong-path arm depth per branch; matches the resolve windows the
#: pipeline actually reaches.
_WORKLOAD_ARM_DEPTH = 8

#: the Figure 4 applications the workload corpus samples — one
#: control-heavy, one pointer-chasing, one streaming profile.
WORKLOAD_NAMES = ("sjeng", "mcf", "libquantum")


def _workload_builder(name, seed):
    def build():
        trace = spec_trace(name, seed=seed)
        ops = [trace.next_op() for _ in range(_WORKLOAD_OPS)]
        wrong_paths = {}
        for op in ops:
            if op.kind is not OpKind.BRANCH:
                continue
            arm = []
            for index in range(_WORKLOAD_ARM_DEPTH):
                wp = trace.wrong_path_op(op, index)
                if wp is None:
                    break
                arm.append(wp)
            if arm:
                wrong_paths[op.uid] = arm
        return ops, wrong_paths

    return build


def workload_programs(seed=0):
    """Finite-prefix SpecPrograms for the sampled SPEC applications."""
    return [
        SpecProgram(
            name=f"workload_{name}",
            builder=_workload_builder(name, seed),
            secret_ranges=(),
            description=(
                f"{_WORKLOAD_OPS}-op prefix of the '{name}' synthetic "
                f"trace with {_WORKLOAD_ARM_DEPTH}-deep wrong-path arms"
            ),
            expected_transmit={"spectre": (), "futuristic": ()},
        )
        for name in WORKLOAD_NAMES
    ]


def all_programs(seed=0):
    """The full corpus: attacks first (name order), then the hardened
    cannot-leak victims, then workloads."""
    return attack_programs() + hardened_programs() + workload_programs(
        seed=seed
    )
