"""Fence- and squash-window reachability (specflow v2).

The pure taint domain flags every tainted transient load TRANSMIT, even
when the *machine* guarantees the load can never issue before the
speculation that covers it resolves.  The dominant case in the fuzz
corpus: the transmission array lives on pages the program never touches
otherwise, so the transmit load takes a TLB miss — ``_start_load``
defers its memory issue by the full page-walk latency (60 cycles at the
default :class:`~repro.params.TLBParams`) — while a *warm* guard load
resolves its branch within ~15 cycles.  The squash reaches the deferred
load first and ``_issue_load_to_memory`` drops it before the load-issue
probe (the attacker-visible event) ever fires.

:class:`WindowModel` turns that argument into two bounds:

* :meth:`resolve_ub` — an upper bound (cycles from program start) on
  when a shadow op resolves and squashes its wrong-path arm, chased
  through the op's dependency tree.  Only provably-warm loads (their
  lines appear in the program's setup ``warm`` list and survive the
  ``flush`` list) get a finite completion bound.
* :meth:`issue_lb` — a lower bound on when a provably-TLB-cold load can
  first issue to memory: the page-walk latency.

A transient candidate is discharged SAFE when
``resolve_ub + MARGIN <= issue_lb``.  The *cold-page proof* feeding
:meth:`issue_lb` lives in the analyzer (it needs the whole-program
memory footprint); this module only owns the timing arithmetic.

Model assumptions (each one is load-bearing; all are exercised
continuously by the differential fuzz campaign, where any SAFE-but-leaks
is campaign-fatal):

* Timer interrupts are off (``CoreParams.interrupt_interval == 0``, the
  default) — no interrupt replay re-arms a resolved shadow.
* Dispatch is in-order and progresses at least one op per cycle for the
  small programs analyzed here (``DISPATCH_SLOP`` absorbs startup).
* ``tlb.fill`` is synchronous at load *start*, so any other memory op in
  the program — earlier or later, squashed or not — may pre-warm the
  candidate's page.  The analyzer therefore requires the candidate's
  reachable pages to be disjoint from every other op's and from the
  setup's, and the candidate to execute exactly once.
* A warm line hits within ``HIT_UB`` cycles (the L2 round trip bounds
  any cache hit) and its page was walked during the warm-up phase.
"""

from __future__ import annotations

from ..cpu.isa import OpKind
from ..params import TLBParams

__all__ = ["WindowModel"]

#: op kinds whose completion a retirement-gated (exception) shadow may
#: wait on and still be boundable; anything else (stores draining,
#: fences, nested faults) makes the bound None.
_BOUNDABLE_OLDER = (
    OpKind.ALU,
    OpKind.FP,
    OpKind.LOAD,
    OpKind.BRANCH,
    OpKind.NOP,
)


class WindowModel:
    """Timing bounds for squash-before-issue discharge proofs."""

    #: dispatch-time upper bound for op ``i`` is ``i + DISPATCH_SLOP``.
    DISPATCH_SLOP = 3
    #: any provably-warm load completes within this many cycles of
    #: starting (L2 round trip bounds L1/L2 hits).
    HIT_UB = 8
    #: squash propagation / resolve bookkeeping slack.
    RESOLVE_SLOP = 2
    #: required gap between the resolve upper bound and the issue lower
    #: bound; absorbs every small-cycle effect the model abstracts away.
    MARGIN = 16
    #: dependency-chase fuel (chains in analyzed programs are short; a
    #: deeper chain simply fails to discharge).
    _CHASE_FUEL = 8

    def __init__(self, tlb=None, line_bytes=64):
        self.tlb = tlb if tlb is not None else TLBParams()
        self.line_bytes = line_bytes

    # ------------------------------------------------------ candidate side

    def issue_lb(self):
        """Earliest cycle a provably-TLB-cold load can issue to memory."""
        return self.tlb.walk_latency

    def page_span(self, lo, hi):
        """Inclusive page range covering byte addresses ``lo..hi``."""
        return (lo // self.tlb.page_bytes, hi // self.tlb.page_bytes)

    # --------------------------------------------------------- shadow side

    def resolve_ub(self, ops, index, setup):
        """Upper bound (cycles) on when ``ops[index]`` resolves and
        squashes its arm, or None when no sound bound exists.

        Branches resolve once their dependency values are ready;
        exceptions trap at retirement, which additionally waits on every
        older op completing.
        """
        if setup is None or not 0 <= index < len(ops):
            return None
        op = ops[index]
        if op.kind is OpKind.BRANCH:
            ready = self._deps_ready_ub(ops, index, setup, self._CHASE_FUEL)
            if ready is None:
                return None
            return ready + max(op.latency, 2) + self.RESOLVE_SLOP
        if op.kind is OpKind.EXCEPTION or op.raises_exception:
            ub = self._deps_ready_ub(ops, index, setup, self._CHASE_FUEL)
            if ub is None:
                return None
            for j in range(index):
                if ops[j].kind not in _BOUNDABLE_OLDER:
                    return None
                done = self._value_ready_ub(ops, j, setup, self._CHASE_FUEL)
                if done is None:
                    return None
                ub = max(ub, done)
            return ub + max(op.latency, 1) + self.RESOLVE_SLOP
        return None

    def _deps_ready_ub(self, ops, index, setup, fuel):
        """When every dependency value of ``ops[index]`` is ready."""
        ub = index + self.DISPATCH_SLOP
        for dist in ops[index].deps:
            j = index - dist
            if not 0 <= j < index:
                return None
            ready = self._value_ready_ub(ops, j, setup, fuel - 1)
            if ready is None:
                return None
            ub = max(ub, ready)
        return ub

    def _value_ready_ub(self, ops, index, setup, fuel):
        """When the value ``ops[index]`` produces is ready, or None."""
        if fuel <= 0:
            return None
        op = ops[index]
        base = self._deps_ready_ub(ops, index, setup, fuel)
        if base is None:
            return None
        if op.kind in (OpKind.ALU, OpKind.FP):
            return base + max(op.latency, 1)
        if op.kind is OpKind.LOAD:
            if self.load_hits(op, setup):
                return base + self.HIT_UB
            return None
        if op.kind is OpKind.BRANCH:
            return base + max(op.latency, 2)
        if op.kind is OpKind.NOP:
            return base + 1
        return None

    def load_hits(self, op, setup):
        """Whether the load provably hits warm, TLB-resident state: a
        concrete address whose lines were all warmed by the setup and
        none flushed afterward.  (The warm-up loads also walk the page,
        so cache-warm implies TLB-warm here.)"""
        if op.addr is None or op.addr_fn is not None:
            return False
        line = self.line_bytes
        lines = set(
            range(op.addr // line, (op.addr + max(op.size, 1) - 1) // line + 1)
        )
        warm = {a // line for a in setup.get("warm", ())}
        flushed = {a // line for a in setup.get("flush", ())}
        return lines <= warm and not (lines & flushed)

    # ----------------------------------------------------------- discharge

    def discharge(self, ops, shadow_index, setup):
        """The timing half of a squash-before-issue proof: a dict of the
        bounds when ``resolve_ub + MARGIN <= issue_lb``, else None.  The
        caller supplies the cold-page half (footprint disjointness)."""
        resolve = self.resolve_ub(ops, shadow_index, setup)
        if resolve is None:
            return None
        issue = self.issue_lb()
        if resolve + self.MARGIN > issue:
            return None
        return {
            "resolve_ub": resolve,
            "issue_lb": issue,
            "margin": self.MARGIN,
        }
