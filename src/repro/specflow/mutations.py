"""Seeded program mutations that must flip specflow classifications.

Mirror of the model checker's mutation registry
(:mod:`repro.staticcheck.mutations`), aimed at the analyzer instead of
the protocol: each entry pairs a *hardened* program (the analyzer must
prove its load SAFE) with a single-edit *mutant* (the analyzer must flag
the same load TRANSMIT, with a witness).  An analyzer that cannot tell
the two apart is not measuring anything.

* ``drop_fence`` — a Spectre victim whose transient arm carries a fence
  between access and transmit (the lfence mitigation): the transmit can
  never issue transiently, so it is SAFE.  The mutant deletes the fence.
* ``weaken_guard`` — a victim whose bounds check actually excludes the
  secret (in-bounds call): everything is SAFE.  The mutant weakens the
  guard so the secret index reaches the guarded arm.
* ``unmask_transmit`` — a victim whose transmit masks the secret to
  zero, so the value lattice proves every reachable address sits on one
  line (SAFE, ``value-killed``).  The mutant restores the full mask.
* ``chill_guard`` — a victim whose guard line is warm, so the branch
  provably resolves (and squashes) before the TLB-cold transmit can
  issue (SAFE, ``squash-window``).  The mutant flushes the guard.
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .analyzer import SpecFlowAnalyzer
from ..security.spectre_v1 import (
    ADDR_B,
    ADDR_LIMIT,
    ADDR_SECRET,
    BRANCH_PC,
    LINE,
    OOB_INDEX,
    victim_ops,
)
from .analyzer import SAFE, TRANSMIT, analyze_program
from .programs import SpecProgram
from .window import WindowModel

__all__ = [
    "ANALYZER_WEAKENINGS",
    "AnalyzerWeakening",
    "MUTATIONS",
    "SpecMutation",
    "check_all",
    "check_mutation",
    "make_weakened_analyzer",
]

_TRANSMIT_PC = 0x7020


def _fenced_victim(with_fence):
    """The Spectre victim, lfence-hardened when ``with_fence``: the
    transient arm is [access, FENCE, transmit], so the transmit waits on
    a fence that cannot complete before the squash."""

    def build():
        bound_load = MicroOp(
            OpKind.LOAD, pc=0x6000, addr=ADDR_LIMIT, size=1, dst="limit"
        )
        branch = MicroOp(
            OpKind.BRANCH, pc=BRANCH_PC, taken=True, deps=(1,), latency=2
        )
        access = MicroOp(
            OpKind.LOAD, pc=0x7010, addr=ADDR_SECRET, size=1, dst="v",
            label="access",
        )
        arm = [access]
        if with_fence:
            arm.append(MicroOp(OpKind.FENCE, pc=0x7014, label="lfence"))
        arm.append(
            MicroOp(
                OpKind.LOAD,
                pc=_TRANSMIT_PC,
                addr_fn=lambda env: ADDR_B + LINE * (env.get("v", 0) & 0xFF),
                size=1,
                deps=(2,) if with_fence else (1,),
                label="transmit",
            )
        )
        return [bound_load, branch], {branch.uid: arm}

    return build


def _masked_victim(mask):
    """The Spectre victim with a mask applied to the transmitted value:
    ``mask=0`` collapses the reachable transmit addresses to one line
    (the value lattice must prove it SAFE); any wider mask spans lines."""

    def build():
        bound_load = MicroOp(
            OpKind.LOAD, pc=0x6000, addr=ADDR_LIMIT, size=1, dst="limit"
        )
        branch = MicroOp(
            OpKind.BRANCH, pc=BRANCH_PC, taken=True, deps=(1,), latency=2
        )
        access = MicroOp(
            OpKind.LOAD, pc=0x7010, addr=ADDR_SECRET, size=1, dst="v",
            label="access",
        )
        transmit = MicroOp(
            OpKind.LOAD,
            pc=_TRANSMIT_PC,
            addr_fn=lambda env: ADDR_B + LINE * (env.get("v", 0) & mask),
            size=1,
            deps=(1,),
            label="transmit",
        )
        return [bound_load, branch], {branch.uid: [access, transmit]}

    return build


def _guarded_setup(warm_guard):
    """Dynamic recipe for the squash-window pair: identical ops, only
    the guard line's temperature differs."""
    warm = [ADDR_SECRET] + ([ADDR_LIMIT] if warm_guard else [])
    flush = [] if warm_guard else [ADDR_LIMIT]
    return {
        "secret_addr": ADDR_SECRET,
        "secret_size": 1,
        "writes": [],
        "warm": warm,
        "flush": flush,
    }


class SpecMutation:
    """A (hardened program, mutant program, load PC to watch) triple."""

    __slots__ = ("name", "description", "model", "target_pc", "baseline",
                 "mutant")

    def __init__(self, name, description, model, target_pc, baseline, mutant):
        self.name = name
        self.description = description
        self.model = model
        self.target_pc = target_pc
        self.baseline = baseline
        self.mutant = mutant


MUTATIONS = [
    SpecMutation(
        name="drop_fence",
        description=(
            "delete the lfence between the transient access and the "
            "dependent transmit"
        ),
        model="futuristic",
        target_pc=_TRANSMIT_PC,
        baseline=SpecProgram(
            "fenced_spectre", _fenced_victim(True),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="lfence-hardened Spectre victim",
        ),
        mutant=SpecProgram(
            "fenced_spectre_dropped", _fenced_victim(False),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="the same victim with the lfence deleted",
        ),
    ),
    SpecMutation(
        name="weaken_guard",
        description=(
            "weaken the bounds check so the secret index reaches the "
            "guarded access/transmit pair"
        ),
        model="futuristic",
        target_pc=_TRANSMIT_PC,
        baseline=SpecProgram(
            "guarded_spectre", lambda: victim_ops(3),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="Spectre victim called in bounds: guard holds",
        ),
        mutant=SpecProgram(
            "guarded_spectre_weakened", lambda: victim_ops(OOB_INDEX),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="the guard no longer excludes the secret index",
        ),
    ),
    SpecMutation(
        name="unmask_transmit",
        description=(
            "widen the transmit mask from 0 (single reachable line, "
            "value-killed) back to the full byte"
        ),
        model="futuristic",
        target_pc=_TRANSMIT_PC,
        baseline=SpecProgram(
            "masked_spectre", _masked_victim(0),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="Spectre victim whose transmit masks the value "
                        "to zero",
        ),
        mutant=SpecProgram(
            "masked_spectre_unmasked", _masked_victim(0xFF),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="the same victim transmitting the full byte",
        ),
    ),
    SpecMutation(
        name="chill_guard",
        description=(
            "flush the guard line so the branch no longer provably "
            "resolves before the TLB-cold transmit can issue"
        ),
        model="futuristic",
        target_pc=_TRANSMIT_PC,
        baseline=SpecProgram(
            "warm_guard_spectre", _masked_victim(0xFF),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="Spectre victim whose warm guard squashes the "
                        "arm before the cold transmit issues",
            setup=_guarded_setup(warm_guard=True),
        ),
        mutant=SpecProgram(
            "warm_guard_spectre_chilled", _masked_victim(0xFF),
            secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
            description="the same victim with the guard line flushed",
            setup=_guarded_setup(warm_guard=False),
        ),
    ),
]


class MutationOutcome:
    """Result of checking one mutation."""

    __slots__ = ("mutation", "flipped", "baseline_class", "mutant_class",
                 "witness")

    def __init__(self, mutation, flipped, baseline_class, mutant_class,
                 witness):
        self.mutation = mutation
        self.flipped = flipped
        self.baseline_class = baseline_class
        self.mutant_class = mutant_class
        #: the mutant's taint-chain counterexample (empty if not flipped)
        self.witness = witness

    def to_dict(self):
        return {
            "mutation": self.mutation.name,
            "description": self.mutation.description,
            "target_pc": f"0x{self.mutation.target_pc:x}",
            "flipped": self.flipped,
            "baseline": self.baseline_class,
            "mutant": self.mutant_class,
            "witness": [dict(step) for step in self.witness],
        }


def check_mutation(mutation, window=64):
    """Analyze baseline and mutant; the check passes iff the target load
    is SAFE before the edit and TRANSMIT after it."""
    base = analyze_program(mutation.baseline, model=mutation.model,
                           window=window)
    mut = analyze_program(mutation.mutant, model=mutation.model,
                          window=window)
    base_rep = base.load_at(mutation.target_pc)
    mut_rep = mut.load_at(mutation.target_pc)
    base_class = base_rep.classification if base_rep else SAFE
    mut_class = mut_rep.classification if mut_rep else SAFE
    flipped = base_class == SAFE and mut_class == TRANSMIT
    witness = mut_rep.witness if (mut_rep and flipped) else ()
    return MutationOutcome(mutation, flipped, base_class, mut_class, witness)


def check_all(window=64):
    """Check every registered mutation; returns the outcome list."""
    return [check_mutation(m, window=window) for m in MUTATIONS]


# ------------------------------------------------- analyzer weakenings
#
# The program mutations above seed bugs into *programs* and expect the
# analyzer to notice.  Analyzer weakenings seed bugs into the *analyzer*
# and expect the differential fuzz campaign (repro.fuzz) to notice: each
# one is a deliberately-unsound SpecFlowAnalyzer variant that a healthy
# campaign must expose as SAFE-but-leaks against dynamic evidence.  A
# campaign that passes with a weakened analyzer installed is not
# measuring soundness.


class _BranchShadowsOnlyAnalyzer(SpecFlowAnalyzer):
    """Ignores every non-branch squash source, even under the
    futuristic model — exception gadgets and store-set (SSB) windows
    become invisible."""

    def _casts_shadow(self, op):
        return not op.kind.is_fence_like and op.kind is OpKind.BRANCH

    def _arm_unsafe(self, shadow_op):
        return shadow_op.kind is OpKind.BRANCH


class _TrailingFenceBlindsAnalyzer(SpecFlowAnalyzer):
    """Credits a fence *anywhere* in a transient arm with protecting the
    whole arm — including the loads that issue before it."""

    def _arm_fence_horizon(self, arm):
        if any(op.kind.is_fence_like for op in arm):
            return -1
        return len(arm)


class _ShortWindowAnalyzer(SpecFlowAnalyzer):
    """Caps the speculation window far below the machine's real resolve
    distance, so padded correct-path shadows fall out of reach."""

    _CAP = 3

    def __init__(self, model="futuristic", window=64):
        super().__init__(model=model, window=min(window, self._CAP))


class _CollapseBlindAnalyzer(SpecFlowAnalyzer):
    """Credits *any* bounded address set with collapsing to one cache
    line — the value-killed proof without its line-span check."""

    def _value_collapse(self, addr, size):
        if self.precision != "full" or addr.vset is None:
            return None
        return {
            "kind": "value-killed",
            "lo": f"0x{addr.vset.lo:x}",
            "hi": f"0x{addr.vset.hi:x}",
            "line": f"0x{(addr.vset.lo // 64) * 64:x}",
            "why": "bounded, therefore (wrongly) assumed single-line",
        }


class _AssumeWarmWindowModel(WindowModel):
    """Grants every concrete-addressed load the warm-hit completion
    bound, whether or not the setup actually warmed (or flushed) it."""

    def load_hits(self, op, setup):
        return op.addr is not None and op.addr_fn is None


class _AssumeWarmAnalyzer(SpecFlowAnalyzer):
    """Squash-window proofs built on the assume-warm timing model:
    flushed resolve chains get warm-hit bounds, so shadows that really
    resolve after the cold transmit issues are credited with squashing
    it first."""

    def __init__(self, model="futuristic", window=64):
        super().__init__(model=model, window=window,
                         window_model=_AssumeWarmWindowModel())


class _SinglePathAnalyzer(SpecFlowAnalyzer):
    """Follows only the first outcome of every abstract fork, dropping
    both the other path and the comparison's taint — branchy address
    math looks like a constant address."""

    def __init__(self, model="futuristic", window=64):
        super().__init__(model=model, window=window)
        self.single_path = True


class AnalyzerWeakening:
    """A named analyzer bug: ``factory(model, window)`` builds the
    weakened analyzer; ``trips_on`` names the gadget-template families
    (see :mod:`repro.fuzz.generator`) guaranteed to expose it — as
    SAFE-but-leaks (soundness) for every weakening except
    ``short_window``, whose damage shows as window-exhausted UNKNOWNs on
    dynamically-leaky loads (the campaign's unknown-gap channel)."""

    __slots__ = ("name", "description", "factory", "trips_on")

    def __init__(self, name, description, factory, trips_on):
        self.name = name
        self.description = description
        self.factory = factory
        self.trips_on = tuple(trips_on)


ANALYZER_WEAKENINGS = {
    weakening.name: weakening
    for weakening in (
        AnalyzerWeakening(
            name="branch_shadows_only",
            description=(
                "only branches cast shadows, even under the futuristic "
                "model: exception and store-bypass transients go unseen"
            ),
            factory=_BranchShadowsOnlyAnalyzer,
            trips_on=("exception", "ssb"),
        ),
        AnalyzerWeakening(
            name="trailing_fence_blinds",
            description=(
                "a fence anywhere in a transient arm is credited with "
                "protecting loads that issue before it"
            ),
            factory=_TrailingFenceBlindsAnalyzer,
            trips_on=("fence_after_transmit",),
        ),
        AnalyzerWeakening(
            name="short_window",
            description=(
                f"speculation window capped at "
                f"{_ShortWindowAnalyzer._CAP} ops: padded correct-path "
                f"shadows fall out of reach"
            ),
            factory=_ShortWindowAnalyzer,
            trips_on=("bounds_check",),
        ),
        AnalyzerWeakening(
            name="value_collapse_blind",
            description=(
                "any bounded transmit address set is credited as "
                "single-line: multi-line masked transmits become SAFE"
            ),
            factory=_CollapseBlindAnalyzer,
            trips_on=("ssb", "exception"),
        ),
        AnalyzerWeakening(
            name="window_assumes_warm",
            description=(
                "squash-window timing assumes every concrete load hits "
                "warm: flushed resolve chains look fast enough to "
                "squash cold transmits that really issue first"
            ),
            factory=_AssumeWarmAnalyzer,
            trips_on=("exception",),
        ),
        AnalyzerWeakening(
            name="fork_single_path",
            description=(
                "path splitting follows only the first fork outcome and "
                "drops the condition taint: select-based transmit "
                "addresses look constant"
            ),
            factory=_SinglePathAnalyzer,
            trips_on=("branchy_select",),
        ),
    )
}


def make_weakened_analyzer(name, model="futuristic", window=64):
    """Instantiate a registered weakening by name."""
    try:
        weakening = ANALYZER_WEAKENINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown analyzer weakening {name!r}; have "
            f"{sorted(ANALYZER_WEAKENINGS)}"
        ) from None
    return weakening.factory(model=model, window=window)
