"""The bounded-window speculative taint analyzer.

Abstract semantics (after Colvin & Winter's speculative-execution
semantics, specialized to this simulator's MicroOp IR):

* The correct path executes in program order.  An op is
  *unsafe-speculative at issue* when an older, still-unresolved op within
  the speculation window can squash it.  Which older ops count is the
  attack model: under ``"spectre"`` only control-flow ops (branches) cast
  shadows; under ``"futuristic"`` any squash source does — branches,
  faulting ops, uncommitted stores (memory-dependence speculation, the
  SSB window) and incomplete older loads (consistency squashes), matching
  :class:`~repro.invisispec.policy.ISFuturePolicy`'s five probes.
* A wrong-path arm (the ``wrong_paths`` dict of a program trace) is
  always transient: its ops issue under the arm owner's shadow and are
  squashed when it resolves.
* A fence is a hard issue barrier.  On the correct path it discharges
  every older shadow for the ops after it; inside a transient arm it can
  never complete before the squash, so arm ops behind it never issue.

Taint enters at *sources* — a load whose (concrete) address overlaps a
declared secret range, or an op carrying an explicit ``taint`` label —
and propagates through register dataflow by abstractly interpreting the
program's own ``addr_fn``/``compute_fn`` lambdas over
:class:`~.domain.TaintEnv` (see :mod:`.domain`).

A static load PC is classified ``TRANSMIT`` when any dynamic instance
issues with a tainted address while unsafe-speculative, ``UNKNOWN`` when
the abstract evaluation failed for an instance that could issue unsafely,
and ``SAFE`` otherwise.  TRANSMIT reports carry the taint chain as a
witness: source op -> every op that moved the taint -> the transmitting
load, plus the shadow that keeps it transient.
"""

from __future__ import annotations

from ..cpu.isa import OpKind
from .domain import AbstractionError, AbstractValue, TaintEnv

__all__ = [
    "SAFE",
    "TRANSMIT",
    "UNKNOWN",
    "UNKNOWN_REASON_KINDS",
    "LoadReport",
    "ProgramReport",
    "SpecFlowAnalyzer",
    "analyze_program",
    "analyze_programs",
    "protected_pcs",
]

TRANSMIT = "TRANSMIT"
SAFE = "SAFE"
UNKNOWN = "UNKNOWN"

#: machine-readable UNKNOWN attribution, one kind per failure mode the
#: abstract walk can hit — consumers (the fuzz campaign's precision
#: stats) aggregate on these rather than parsing free-text reasons.
REASON_ABSTRACTION_ERROR = "abstraction-error"  # AbstractionError site
REASON_UNMODELED_OP = "unmodeled-op"  # lambda failed some other way
REASON_WINDOW_EXHAUSTED = "window-exhausted"  # arm deeper than the window
UNKNOWN_REASON_KINDS = (
    REASON_ABSTRACTION_ERROR,
    REASON_UNMODELED_OP,
    REASON_WINDOW_EXHAUSTED,
)

#: classification strength for aggregation across dynamic instances
_RANK = {SAFE: 0, UNKNOWN: 1, TRANSMIT: 2}

_SHADOW_WHY = {
    OpKind.BRANCH: "unresolved branch",
    OpKind.EXCEPTION: "pending fault",
    OpKind.STORE: "older store not yet committed",
    OpKind.LOAD: "older load not yet performed",
}


class LoadReport:
    """Classification of one static load PC within one program."""

    __slots__ = (
        "pc",
        "classification",
        "taints",
        "witness",
        "shadow",
        "instances",
        "reason",
        "reason_kind",
    )

    def __init__(self, pc):
        self.pc = pc
        self.classification = SAFE
        self.taints = ()
        self.witness = ()
        self.shadow = None
        self.instances = 0
        self.reason = None
        self.reason_kind = None

    def to_dict(self):
        out = {
            "pc": f"0x{self.pc:x}",
            "classification": self.classification,
            "instances": self.instances,
        }
        if self.classification == TRANSMIT:
            out["taints"] = list(self.taints)
            out["witness"] = [dict(step) for step in self.witness]
            out["shadow"] = dict(self.shadow) if self.shadow else None
        if self.classification == UNKNOWN:
            out["reason"] = self.reason
            out["reason_kind"] = self.reason_kind
        return out


class ProgramReport:
    """Per-program analysis result: every static load PC, classified."""

    __slots__ = ("program", "model", "window", "loads")

    def __init__(self, program, model, window, loads):
        self.program = program
        self.model = model
        self.window = window
        #: list of LoadReport, sorted by pc
        self.loads = loads

    def load_at(self, pc):
        for rep in self.loads:
            if rep.pc == pc:
                return rep
        return None

    def pcs(self, classification):
        return tuple(
            rep.pc for rep in self.loads
            if rep.classification == classification
        )

    @property
    def summary(self):
        counts = {TRANSMIT: 0, SAFE: 0, UNKNOWN: 0}
        reasons = {kind: 0 for kind in UNKNOWN_REASON_KINDS}
        for rep in self.loads:
            counts[rep.classification] += 1
            if rep.classification == UNKNOWN and rep.reason_kind in reasons:
                reasons[rep.reason_kind] += 1
        counts["unknown_reasons"] = reasons
        return counts

    def to_dict(self):
        return {
            "program": self.program,
            "attack_model": self.model,
            "window": self.window,
            "loads": [rep.to_dict() for rep in self.loads],
            "summary": self.summary,
        }


def protected_pcs(report):
    """The PC set Scheme.SELECTIVE must protect: everything the analysis
    could not prove SAFE."""
    return frozenset(
        rep.pc for rep in report.loads if rep.classification != SAFE
    )


class _Instance:
    """One dynamic occurrence of a load during the abstract walk."""

    __slots__ = ("verdict", "taints", "witness", "shadow", "reason",
                 "reason_kind")

    def __init__(self, verdict, taints=(), witness=(), shadow=None,
                 reason=None, reason_kind=None):
        self.verdict = verdict
        self.taints = taints
        self.witness = witness
        self.shadow = shadow
        self.reason = reason
        self.reason_kind = reason_kind


class SpecFlowAnalyzer:
    """See the module docstring.

    ``window`` bounds how far back (in dynamic ops) a shadow reaches —
    the abstract stand-in for the ROB/resolve window an attacker can
    stretch.  The default covers the simulated core's ROB.
    """

    def __init__(self, model="futuristic", window=64):
        if model not in ("spectre", "futuristic"):
            raise ValueError(f"unknown attack model {model!r}")
        self.model = model
        self.window = window

    # --------------------------------------------------------------- driving

    def analyze(self, program):
        """Analyze one :class:`~.programs.SpecProgram`; returns a
        :class:`ProgramReport`."""
        ops, wrong_paths = program.build()
        per_pc = {}
        env = TaintEnv()
        results = []  # AbstractValue produced by each correct-path op
        last_fence = -1
        for i, op in enumerate(ops):
            if op.kind.is_fence_like:
                last_fence = i
                results.append(AbstractValue(0))
                continue
            shadow = self._correct_path_shadow(ops, i, last_fence)
            value, addr, err = self._execute(
                op, env, results, program, f"op[{i}]"
            )
            if op.kind is OpKind.LOAD:
                self._record(
                    per_pc, op, addr, err,
                    unsafe=shadow is not None, shadow=shadow,
                )
            results.append(value)
            if op.dst is not None:
                env.write(op.dst, value)
            arm = wrong_paths.get(op.uid)
            if arm:
                self._walk_arm(
                    op, i, arm, env.snapshot(), list(results), per_pc,
                    program,
                )
        loads = [per_pc[pc] for pc in sorted(per_pc)]
        return ProgramReport(program.name, self.model, self.window, loads)

    # --------------------------------------------------------------- shadows

    def _casts_shadow(self, op):
        if op.kind.is_fence_like:
            return False
        if self.model == "spectre":
            return op.kind is OpKind.BRANCH
        return (
            op.kind in (OpKind.BRANCH, OpKind.EXCEPTION, OpKind.STORE,
                        OpKind.LOAD, OpKind.PREFETCH)
            or op.raises_exception
        )

    def _shadow_descr(self, op, index):
        why = _SHADOW_WHY.get(op.kind, "unresolved older op")
        if op.raises_exception and op.kind is not OpKind.EXCEPTION:
            why = "pending fault"
        return {
            "pc": f"0x{op.pc:x}",
            "kind": op.kind.value,
            "index": index,
            "why": why,
        }

    def _correct_path_shadow(self, ops, i, last_fence):
        """The oldest shadow-casting op that can still squash op ``i``
        when it issues, or None.  Ops at or before the latest fence are
        discharged: the fence completes only once they have resolved."""
        start = max(last_fence + 1, i - self.window)
        for j in range(start, i):
            if self._casts_shadow(ops[j]):
                return self._shadow_descr(ops[j], j)
        return None

    # --------------------------------------------------------- transient arms

    def _arm_unsafe(self, shadow_op):
        """Whether a transient issue under this arm's shadow counts as
        unsafe.  The attack model's call: IS-Spectre only vouches for
        branch shadows."""
        return (
            self.model == "futuristic"
            or shadow_op.kind is OpKind.BRANCH
        )

    def _arm_fence_horizon(self, arm):
        """Arm index after which nothing issues transiently: the first
        fence (it can never complete before the squash, so everything
        behind it never issues at all).  ``len(arm)`` when fence-free."""
        for k, op in enumerate(arm):
            if op.kind.is_fence_like:
                return k
        return len(arm)

    def _walk_arm(self, shadow_op, shadow_index, arm, env, results, per_pc,
                  program):
        """Abstractly execute one wrong-path arm.  Every arm op is
        transient; :meth:`_arm_unsafe` decides whether its issues are
        unsafe and :meth:`_arm_fence_horizon` how deep the arm can issue
        at all."""
        unsafe = self._arm_unsafe(shadow_op)
        shadow = self._shadow_descr(shadow_op, shadow_index)
        where_base = f"wp(0x{shadow_op.pc:x})"
        horizon = self._arm_fence_horizon(arm)
        for k, op in enumerate(arm):
            if op.kind.is_fence_like:
                results.append(AbstractValue(0))
                continue
            value, addr, err = self._execute(
                op, env, results, program, f"{where_base}[{k}]"
            )
            if op.kind is OpKind.LOAD:
                if k > horizon:
                    # Never issues transiently: an arm fence outlives it.
                    self._record(per_pc, op, addr, None, unsafe=False,
                                 shadow=None)
                elif k >= self.window:
                    # Deeper into the arm than the speculation window:
                    # the abstract machine cannot tell whether this load
                    # still fits in flight before the squash, so neither
                    # SAFE nor TRANSMIT is provable.
                    self._record(per_pc, op, addr, err, unsafe=unsafe,
                                 shadow=shadow, window_exhausted=True)
                else:
                    self._record(per_pc, op, addr, err, unsafe=unsafe,
                                 shadow=shadow)
            results.append(value)
            if op.dst is not None:
                env.write(op.dst, value)

    # ------------------------------------------------------- abstract execute

    def _execute(self, op, env, results, program, where):
        """Produce ``(result_value, address_value, error)`` for one op.

        ``address_value`` is the AbstractValue of the memory address for
        memory ops (None otherwise); ``error`` is the AbstractionError /
        evaluation failure, if any.
        """
        kind = op.kind
        if kind in (OpKind.LOAD, OpKind.PREFETCH):
            return self._execute_load(op, env, program, where)
        if kind in (OpKind.ALU, OpKind.FP):
            if op.compute_fn is not None:
                try:
                    # The audited choke point where program lambdas run over
                    # the abstract register file; everywhere else evaluation
                    # stays inside repro.cpu.
                    raw = op.compute_fn(env)  # reprolint: disable=register-env-bypass -- specflow's abstract interpretation IS the audited evaluation of program lambdas; TaintEnv propagates taint soundly
                    value = self._lift(raw)
                except Exception as exc:  # noqa: BLE001 - any failure => UNKNOWN
                    return AbstractValue(0), None, exc
            else:
                value = self._dep_join(op, results)
            value = value.with_step(self._step(op, where, "computes on it"))
            return value, None, None
        if kind is OpKind.STORE:
            # Stores never issue to memory speculatively in this machine
            # (the SQ holds them to retirement), so they cannot transmit;
            # their dataflow into memory is covered by the secret ranges.
            return AbstractValue(0), None, None
        # branches, fences, exceptions, nops produce no register value
        return AbstractValue(0), None, None

    def _execute_load(self, op, env, program, where):
        err = None
        if op.addr_fn is not None:
            try:
                # Audited choke point, as above: the program's own address
                # lambda is its transfer function over the abstract domain.
                raw = op.addr_fn(env)  # reprolint: disable=register-env-bypass -- specflow's abstract interpretation IS the audited evaluation of program lambdas; TaintEnv propagates taint soundly
                addr = self._lift(raw)
            except Exception as exc:  # noqa: BLE001 - any failure => UNKNOWN
                return AbstractValue(0), None, exc
        else:
            addr = AbstractValue(op.addr if op.addr is not None else 0)

        taints = set(addr.taints)
        chain = list(addr.chain)
        if addr.tainted:
            chain.append(
                self._step(op, where, "loads via the tainted address")
            )
        source = self._source_label(op, addr, program)
        if source is not None:
            taints.add(source)
            if not addr.tainted:
                chain = [self._step(op, where, f"taint source ({source})")]
        value = AbstractValue(0, frozenset(taints), tuple(chain))
        return value, addr, err

    def _source_label(self, op, addr, program):
        if op.taint is not None:
            return str(op.taint)
        if addr.tainted:
            # A tainted pointer's concrete component is not meaningful;
            # taint already propagates through the address itself.
            return None
        lo_hit = program.secret_range_overlapping(addr.value, op.size)
        if lo_hit is not None:
            return f"secret@0x{lo_hit:x}"
        return None

    def _dep_join(self, op, results):
        value = AbstractValue(0)
        here = len(results)
        for dist in op.deps:
            j = here - dist
            if 0 <= j < here:
                value = value._combine(results[j], value.value)
        return value

    @staticmethod
    def _lift(raw):
        if isinstance(raw, AbstractValue):
            return raw
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise AbstractionError(
                f"address/compute lambda returned {type(raw).__name__}"
            )
        return AbstractValue(raw)

    @staticmethod
    def _step(op, where, note):
        return {
            "at": where,
            "pc": f"0x{op.pc:x}",
            "kind": op.kind.value,
            "label": op.label,
            "note": note,
        }

    # ----------------------------------------------------------- aggregation

    def _record(self, per_pc, op, addr, err, unsafe, shadow,
                window_exhausted=False):
        rep = per_pc.get(op.pc)
        if rep is None:
            rep = per_pc[op.pc] = LoadReport(op.pc)
        rep.instances += 1
        inst = self._classify_instance(op, addr, err, unsafe, shadow,
                                       window_exhausted)
        if _RANK[inst.verdict] > _RANK[rep.classification]:
            rep.classification = inst.verdict
            rep.taints = inst.taints
            rep.witness = inst.witness
            rep.shadow = inst.shadow
            rep.reason = inst.reason
            rep.reason_kind = inst.reason_kind

    def _classify_instance(self, op, addr, err, unsafe, shadow,
                           window_exhausted=False):
        if not unsafe:
            # Cannot issue while squashable: harmless no matter what its
            # address computation does.
            return _Instance(SAFE)
        if err is not None or addr is None:
            return _Instance(
                UNKNOWN,
                reason=f"{type(err).__name__}: {err}" if err else
                "address not evaluable",
                reason_kind=(
                    REASON_ABSTRACTION_ERROR
                    if isinstance(err, AbstractionError)
                    else REASON_UNMODELED_OP
                ),
            )
        if window_exhausted:
            return _Instance(
                UNKNOWN,
                reason=(
                    f"arm index beyond the {self.window}-op speculation "
                    f"window: issue-before-squash not provable"
                ),
                reason_kind=REASON_WINDOW_EXHAUSTED,
            )
        if not addr.tainted:
            return _Instance(SAFE)
        witness = addr.chain + (
            self._step(
                op, f"0x{op.pc:x}",
                "transmits: issues with this tainted address while "
                "unsafe-speculative",
            ),
        )
        return _Instance(
            TRANSMIT,
            taints=tuple(sorted(addr.taints)),
            witness=witness,
            shadow=shadow,
        )


def analyze_program(program, model="futuristic", window=64):
    """Convenience wrapper: one program, one attack model."""
    return SpecFlowAnalyzer(model=model, window=window).analyze(program)


def analyze_programs(programs, model="futuristic", window=64, analyzer=None):
    """Batch API: analyze many programs through one analyzer instance.

    ``analyzer`` overrides construction entirely (the fuzz campaign
    passes a seeded-weakening subclass here); otherwise one analyzer is
    built from ``model``/``window`` and reused, which is what keeps a
    thousand-program sweep allocation-light.  Returns reports in input
    order.
    """
    if analyzer is None:
        analyzer = SpecFlowAnalyzer(model=model, window=window)
    return [analyzer.analyze(program) for program in programs]
