"""The bounded-window speculative taint analyzer.

Abstract semantics (after Colvin & Winter's speculative-execution
semantics, specialized to this simulator's MicroOp IR):

* The correct path executes in program order.  An op is
  *unsafe-speculative at issue* when an older, still-unresolved op within
  the speculation window can squash it.  Which older ops count is the
  attack model: under ``"spectre"`` only control-flow ops (branches) cast
  shadows; under ``"futuristic"`` any squash source does — branches,
  faulting ops, uncommitted stores (memory-dependence speculation, the
  SSB window) and incomplete older loads (consistency squashes), matching
  :class:`~repro.invisispec.policy.ISFuturePolicy`'s five probes.
* A wrong-path arm (the ``wrong_paths`` dict of a program trace) is
  always transient: its ops issue under the arm owner's shadow and are
  squashed when it resolves.
* A fence is a hard issue barrier.  On the correct path it discharges
  every older shadow for the ops after it; inside a transient arm it can
  never complete before the squash, so arm ops behind it never issue.

Taint enters at *sources* — a load whose (concrete) address overlaps a
declared secret range, or an op carrying an explicit ``taint`` label —
and propagates through register dataflow by abstractly interpreting the
program's own ``addr_fn``/``compute_fn`` lambdas over
:class:`~.domain.TaintEnv` (see :mod:`.domain`).

A static load PC is classified ``TRANSMIT`` when any dynamic instance
issues with a tainted address while unsafe-speculative, ``UNKNOWN`` when
the abstract evaluation failed for an instance that could issue unsafely,
and ``SAFE`` otherwise.  TRANSMIT reports carry the taint chain as a
witness: source op -> every op that moved the taint -> the transmitting
load, plus the shadow that keeps it transient.

The v2 precision layers (``precision="full"``, the default) can prove a
*tainted* transient load SAFE, each with a machine-checkable ``proof``
in the report:

* **value collapse** — the mask/interval lattice bounds every address
  the load can reach to a single cache line, so the access pattern is
  secret-independent (proof kind ``value-killed``);
* **path splitting** — comparisons inside lambdas fork the abstract
  evaluation instead of failing; classifications join over all paths,
  with the condition's taint riding the joined value (no proof — this
  removes the old ``abstraction-error`` UNKNOWNs);
* **squash-window reachability** — the arm's shadow provably resolves
  (and squashes) before a provably-TLB-cold load can first issue (proof
  kind ``squash-window``; see :mod:`.window`); structural arm fences get
  the same treatment (proof kind ``arm-fence``).

``precision="taint"`` reproduces the v1 pure-taint behaviour — used as
the comparison baseline by the selective-protection experiment.
"""

from __future__ import annotations

from ..cpu.isa import OpKind
from .domain import (
    AbstractionError,
    AbstractValue,
    PathLimitError,
    TaintEnv,
    ValueSet,
    explore_paths,
)
from .window import WindowModel

__all__ = [
    "SAFE",
    "TRANSMIT",
    "UNKNOWN",
    "UNKNOWN_REASON_KINDS",
    "LoadReport",
    "ProgramReport",
    "SpecFlowAnalyzer",
    "analyze_program",
    "analyze_programs",
    "protected_pcs",
]

TRANSMIT = "TRANSMIT"
SAFE = "SAFE"
UNKNOWN = "UNKNOWN"

#: machine-readable UNKNOWN attribution, one kind per failure mode the
#: abstract walk can hit — consumers (the fuzz campaign's precision
#: stats) aggregate on these rather than parsing free-text reasons.
REASON_ABSTRACTION_ERROR = "abstraction-error"  # AbstractionError site
REASON_UNMODELED_OP = "unmodeled-op"  # lambda failed some other way
REASON_WINDOW_EXHAUSTED = "window-exhausted"  # arm deeper than the window
REASON_PATH_LIMIT = "path-limit"  # path splitting ran out of budget
UNKNOWN_REASON_KINDS = (
    REASON_ABSTRACTION_ERROR,
    REASON_UNMODELED_OP,
    REASON_WINDOW_EXHAUSTED,
    REASON_PATH_LIMIT,
)

#: exceptions that mean "the abstract domain could not model this
#: lambda" and may soundly become UNKNOWN; anything else — including
#: KeyboardInterrupt/SystemExit (BaseException) and resource failures
#: like MemoryError — propagates to the caller.
_MODEL_FAILURES = (
    AbstractionError,
    PathLimitError,
    ArithmeticError,
    LookupError,
    AttributeError,
    TypeError,
    ValueError,
    RecursionError,
)

#: classification strength for aggregation across dynamic instances
_RANK = {SAFE: 0, UNKNOWN: 1, TRANSMIT: 2}

_SHADOW_WHY = {
    OpKind.BRANCH: "unresolved branch",
    OpKind.EXCEPTION: "pending fault",
    OpKind.STORE: "older store not yet committed",
    OpKind.LOAD: "older load not yet performed",
}


class LoadReport:
    """Classification of one static load PC within one program."""

    __slots__ = (
        "pc",
        "classification",
        "taints",
        "witness",
        "shadow",
        "instances",
        "reason",
        "reason_kind",
        "proof",
    )

    def __init__(self, pc):
        self.pc = pc
        self.classification = SAFE
        self.taints = ()
        self.witness = ()
        self.shadow = None
        self.instances = 0
        self.reason = None
        self.reason_kind = None
        #: for SAFE loads only: the structural/value/timing argument that
        #: discharged an otherwise-unsafe instance (None when the load
        #: was trivially safe)
        self.proof = None

    def to_dict(self):
        out = {
            "pc": f"0x{self.pc:x}",
            "classification": self.classification,
            "instances": self.instances,
        }
        if self.classification == TRANSMIT:
            out["taints"] = list(self.taints)
            out["witness"] = [dict(step) for step in self.witness]
            out["shadow"] = dict(self.shadow) if self.shadow else None
        if self.classification == UNKNOWN:
            out["reason"] = self.reason
            out["reason_kind"] = self.reason_kind
        if self.classification == SAFE and self.proof is not None:
            out["proof"] = dict(self.proof)
        return out


class ProgramReport:
    """Per-program analysis result: every static load PC, classified."""

    __slots__ = ("program", "model", "window", "loads")

    def __init__(self, program, model, window, loads):
        self.program = program
        self.model = model
        self.window = window
        #: list of LoadReport, sorted by pc
        self.loads = loads

    def load_at(self, pc):
        for rep in self.loads:
            if rep.pc == pc:
                return rep
        return None

    def pcs(self, classification):
        return tuple(
            rep.pc for rep in self.loads
            if rep.classification == classification
        )

    @property
    def summary(self):
        counts = {TRANSMIT: 0, SAFE: 0, UNKNOWN: 0}
        reasons = {kind: 0 for kind in UNKNOWN_REASON_KINDS}
        for rep in self.loads:
            counts[rep.classification] += 1
            if rep.classification == UNKNOWN and rep.reason_kind in reasons:
                reasons[rep.reason_kind] += 1
        counts["unknown_reasons"] = reasons
        return counts

    def to_dict(self):
        return {
            "program": self.program,
            "attack_model": self.model,
            "window": self.window,
            "loads": [rep.to_dict() for rep in self.loads],
            "summary": self.summary,
        }


def protected_pcs(report):
    """The PC set Scheme.SELECTIVE must protect: everything the analysis
    could not prove SAFE."""
    return frozenset(
        rep.pc for rep in report.loads if rep.classification != SAFE
    )


class _Instance:
    """One dynamic occurrence of a load during the abstract walk."""

    __slots__ = ("verdict", "taints", "witness", "shadow", "reason",
                 "reason_kind", "proof")

    def __init__(self, verdict, taints=(), witness=(), shadow=None,
                 reason=None, reason_kind=None, proof=None):
        self.verdict = verdict
        self.taints = taints
        self.witness = witness
        self.shadow = shadow
        self.reason = reason
        self.reason_kind = reason_kind
        self.proof = proof


class _Pending:
    """A recorded load instance, classified after the walk completes
    (squash-window proofs need the whole-program memory footprint)."""

    __slots__ = ("op", "addr", "err", "unsafe", "shadow", "shadow_index",
                 "arm", "fenced", "window_exhausted")

    def __init__(self, op, addr, err, unsafe, shadow, shadow_index=None,
                 arm=False, fenced=False, window_exhausted=False):
        self.op = op
        self.addr = addr
        self.err = err
        self.unsafe = unsafe
        self.shadow = shadow
        #: correct-path index of the shadow op (arm records only)
        self.shadow_index = shadow_index
        self.arm = arm
        self.fenced = fenced
        self.window_exhausted = window_exhausted


class _WalkContext:
    """Per-analysis scratch: the record stream plus everything the
    deferred classification pass consults."""

    __slots__ = ("ops", "setup", "records", "footprint", "load_counts")

    def __init__(self, ops, setup):
        self.ops = ops
        self.setup = setup
        self.records = []
        #: (uid, (page_lo, page_hi) or None) per memory-op instance;
        #: None means the op's reachable pages could not be bounded.
        self.footprint = []
        self.load_counts = {}


class SpecFlowAnalyzer:
    """See the module docstring.

    ``window`` bounds how far back (in dynamic ops) a shadow reaches —
    the abstract stand-in for the ROB/resolve window an attacker can
    stretch.  The default covers the simulated core's ROB.
    ``precision`` selects the abstract domain: ``"full"`` (v2 — value
    sets, path splitting, squash-window proofs) or ``"taint"`` (the v1
    pure-taint baseline).  ``max_paths`` caps path splitting per lambda;
    past it the instance is UNKNOWN with reason kind ``path-limit``.
    """

    def __init__(self, model="futuristic", window=64, precision="full",
                 window_model=None, max_paths=64):
        if model not in ("spectre", "futuristic"):
            raise ValueError(f"unknown attack model {model!r}")
        if precision not in ("taint", "full"):
            raise ValueError(f"unknown precision {precision!r}")
        self.model = model
        self.window = window
        self.precision = precision
        self.window_model = (
            window_model if window_model is not None else WindowModel()
        )
        self.max_paths = max_paths
        #: seeded-weakening hook (see specflow.mutations): follow only
        #: the first outcome of every abstract fork — deliberately
        #: unsound when True.
        self.single_path = False

    # --------------------------------------------------------------- driving

    def analyze(self, program):
        """Analyze one :class:`~.programs.SpecProgram`; returns a
        :class:`ProgramReport`."""
        ops, wrong_paths = program.build()
        ctx = _WalkContext(ops, getattr(program, "setup", None))
        env = TaintEnv()
        results = []  # AbstractValue produced by each correct-path op
        last_fence = -1
        for i, op in enumerate(ops):
            if op.kind.is_fence_like:
                last_fence = i
                results.append(AbstractValue(0))
                continue
            shadow = self._correct_path_shadow(ops, i, last_fence)
            value, addr, err = self._execute(
                op, env, results, program, f"op[{i}]"
            )
            if op.kind.is_memory:
                self._note_footprint(ctx, op, addr)
            if op.kind is OpKind.LOAD:
                self._record(
                    ctx, op, addr, err,
                    unsafe=shadow is not None, shadow=shadow,
                )
            results.append(value)
            if op.dst is not None:
                env.write(op.dst, value)
            arm = wrong_paths.get(op.uid)
            if arm:
                self._walk_arm(
                    op, i, arm, env.snapshot(), list(results), ctx, program,
                )
        per_pc = {}
        for rec in ctx.records:
            ctx.load_counts[rec.op.uid] = (
                ctx.load_counts.get(rec.op.uid, 0) + 1
            )
        for rec in ctx.records:
            self._aggregate(per_pc, rec, ctx)
        loads = [per_pc[pc] for pc in sorted(per_pc)]
        return ProgramReport(program.name, self.model, self.window, loads)

    # --------------------------------------------------------------- shadows

    def _casts_shadow(self, op):
        if op.kind.is_fence_like:
            return False
        if self.model == "spectre":
            return op.kind is OpKind.BRANCH
        return (
            op.kind in (OpKind.BRANCH, OpKind.EXCEPTION, OpKind.STORE,
                        OpKind.LOAD, OpKind.PREFETCH)
            or op.raises_exception
        )

    def _shadow_descr(self, op, index):
        why = _SHADOW_WHY.get(op.kind, "unresolved older op")
        if op.raises_exception and op.kind is not OpKind.EXCEPTION:
            why = "pending fault"
        return {
            "pc": f"0x{op.pc:x}",
            "kind": op.kind.value,
            "index": index,
            "why": why,
        }

    def _correct_path_shadow(self, ops, i, last_fence):
        """The oldest shadow-casting op that can still squash op ``i``
        when it issues, or None.  Ops at or before the latest fence are
        discharged: the fence completes only once they have resolved."""
        start = max(last_fence + 1, i - self.window)
        for j in range(start, i):
            if self._casts_shadow(ops[j]):
                return self._shadow_descr(ops[j], j)
        return None

    # --------------------------------------------------------- transient arms

    def _arm_unsafe(self, shadow_op):
        """Whether a transient issue under this arm's shadow counts as
        unsafe.  The attack model's call: IS-Spectre only vouches for
        branch shadows."""
        return (
            self.model == "futuristic"
            or shadow_op.kind is OpKind.BRANCH
        )

    def _arm_fence_horizon(self, arm):
        """Arm index after which nothing issues transiently: the first
        fence (it can never complete before the squash, so everything
        behind it never issues at all).  ``len(arm)`` when fence-free."""
        for k, op in enumerate(arm):
            if op.kind.is_fence_like:
                return k
        return len(arm)

    def _walk_arm(self, shadow_op, shadow_index, arm, env, results, ctx,
                  program):
        """Abstractly execute one wrong-path arm.  Every arm op is
        transient; :meth:`_arm_unsafe` decides whether its issues are
        unsafe and :meth:`_arm_fence_horizon` how deep the arm can issue
        at all."""
        unsafe = self._arm_unsafe(shadow_op)
        shadow = self._shadow_descr(shadow_op, shadow_index)
        where_base = f"wp(0x{shadow_op.pc:x})"
        horizon = self._arm_fence_horizon(arm)
        for k, op in enumerate(arm):
            if op.kind.is_fence_like:
                results.append(AbstractValue(0))
                continue
            value, addr, err = self._execute(
                op, env, results, program, f"{where_base}[{k}]"
            )
            if op.kind.is_memory:
                self._note_footprint(ctx, op, addr)
            if op.kind is OpKind.LOAD:
                if k > horizon:
                    # Never issues transiently: an arm fence outlives it.
                    self._record(
                        ctx, op, addr, None, unsafe=False, shadow=shadow,
                        shadow_index=shadow_index, arm=True, fenced=True,
                    )
                elif k >= self.window:
                    # Deeper into the arm than the speculation window:
                    # the abstract machine cannot tell whether this load
                    # still fits in flight before the squash, so neither
                    # SAFE nor TRANSMIT is provable (unless a
                    # squash-window proof discharges it later).
                    self._record(
                        ctx, op, addr, err, unsafe=unsafe, shadow=shadow,
                        shadow_index=shadow_index, arm=True,
                        window_exhausted=True,
                    )
                else:
                    self._record(
                        ctx, op, addr, err, unsafe=unsafe, shadow=shadow,
                        shadow_index=shadow_index, arm=True,
                    )
            results.append(value)
            if op.dst is not None:
                env.write(op.dst, value)

    # ------------------------------------------------------- abstract execute

    def _execute(self, op, env, results, program, where):
        """Produce ``(result_value, address_value, error)`` for one op.

        ``address_value`` is the AbstractValue of the memory address for
        memory ops (None otherwise); ``error`` is the modeling failure,
        if any.
        """
        kind = op.kind
        if kind in (OpKind.LOAD, OpKind.PREFETCH):
            return self._execute_load(op, env, program, where)
        if kind in (OpKind.ALU, OpKind.FP):
            if op.compute_fn is not None:
                value, err = self._eval_fn(op.compute_fn, env)
                if err is not None:
                    return AbstractValue(0), None, err
            else:
                value = self._dep_join(op, results)
            value = value.with_step(self._step(op, where, "computes on it"))
            return value, None, None
        if kind is OpKind.STORE:
            # Stores never issue to memory speculatively in this machine
            # (the SQ holds them to retirement), so they cannot transmit;
            # their dataflow into memory is covered by the secret ranges.
            # Their address still matters to the footprint: a committed
            # store walks (and warms) its page.
            return AbstractValue(0), self._store_addr(op, env), None
        # branches, fences, exceptions, nops produce no register value
        return AbstractValue(0), None, None

    def _execute_load(self, op, env, program, where):
        if op.addr_fn is not None:
            addr, err = self._eval_fn(op.addr_fn, env)
            if err is not None:
                return AbstractValue(0), None, err
        else:
            addr = AbstractValue(op.addr if op.addr is not None else 0)

        taints = set(addr.taints)
        chain = list(addr.chain)
        if addr.tainted:
            chain.append(
                self._step(op, where, "loads via the tainted address")
            )
        source = self._source_label(op, addr, program)
        if source is not None:
            taints.add(source)
            if not addr.tainted:
                chain = [self._step(op, where, f"taint source ({source})")]
        # The loaded value itself is unbounded (memory is not modeled):
        # any of the 2^(8*size) patterns, none of them constant-derived.
        value = AbstractValue(
            0, frozenset(taints), tuple(chain),
            vset=ValueSet.top_bytes(op.size), concrete=False,
        )
        return value, addr, None

    def _store_addr(self, op, env):
        """A store's address for footprint purposes only; modeling
        failures degrade to an unbounded footprint entry, never UNKNOWN
        (stores cannot transmit)."""
        if op.addr_fn is not None:
            addr, err = self._eval_fn(op.addr_fn, env)
            return None if err is not None else addr
        if op.addr is not None:
            return AbstractValue(op.addr)
        return None

    def _eval_fn(self, fn, env):
        """Run one program lambda over the abstract environment; returns
        ``(joined_value, None)`` or ``(None, modeling_failure)``.

        This is the audited choke point where program lambdas execute
        over the abstract register file (TaintEnv propagates taint
        soundly); everywhere else evaluation stays inside repro.cpu.
        Under full precision the lambda runs once per reachable decision
        vector (see :func:`~.domain.explore_paths`) and the leaves join.
        """
        try:
            if self.precision != "full":
                return self._lift(fn(env)), None
            leaves = explore_paths(
                fn, env, max_paths=self.max_paths,
                single_path=self.single_path,
            )
            return self._join_leaves(leaves), None
        except _MODEL_FAILURES as exc:
            return None, exc

    def _join_leaves(self, leaves):
        """Join the path-split leaves of one lambda evaluation into a
        single AbstractValue.  The taint of every *condition* decided
        along a path rides the join: an address that selects between
        constants on a secret-derived compare is still secret-dependent.
        """
        values = [self._lift(leaf.result) for leaf in leaves]
        if self.single_path:
            # Seeded weakening: pretend the first outcome of every
            # abstract branch was concrete — both the other path and the
            # condition taint are (unsoundly) dropped.
            return values[0]
        if len(values) == 1 and not leaves[0].cond_taints:
            return values[0]
        taints = set()
        vset = values[0].vset
        for value in values[1:]:
            vset = ValueSet.hull(vset, value.vset)
        chain = ()
        cond_chain = ()
        for leaf, value in zip(leaves, values):
            taints |= value.taints
            taints |= leaf.cond_taints
            if not chain and value.taints and value.chain:
                chain = value.chain
            if not cond_chain and leaf.cond_taints and leaf.cond_chain:
                cond_chain = leaf.cond_chain
        if not chain:
            chain = cond_chain
        if not chain:
            for value in values:
                if value.chain:
                    chain = value.chain
                    break
        return AbstractValue(
            values[0].value, frozenset(taints), chain,
            vset=vset, concrete=False,
        )

    def _source_label(self, op, addr, program):
        if op.taint is not None:
            return str(op.taint)
        if addr.tainted:
            # A tainted pointer's concrete component is not meaningful;
            # taint already propagates through the address itself.
            return None
        lo_hit = program.secret_range_overlapping(addr.value, op.size)
        if lo_hit is not None:
            return f"secret@0x{lo_hit:x}"
        return None

    def _dep_join(self, op, results):
        value = AbstractValue(0)
        here = len(results)
        for dist in op.deps:
            j = here - dist
            if 0 <= j < here:
                value = value._combine(results[j], value.value)
        if op.deps:
            # A dep join's concrete component is a placeholder, not the
            # architectural value — it must never decide a comparison.
            return AbstractValue(
                value.value, value.taints, value.chain,
                vset=None, concrete=False,
            )
        return value

    @staticmethod
    def _lift(raw):
        if isinstance(raw, AbstractValue):
            return raw
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise AbstractionError(
                f"address/compute lambda returned {type(raw).__name__}"
            )
        return AbstractValue(raw)

    @staticmethod
    def _step(op, where, note):
        return {
            "at": where,
            "pc": f"0x{op.pc:x}",
            "kind": op.kind.value,
            "label": op.label,
            "note": note,
        }

    # ----------------------------------------------------------- aggregation

    def _record(self, ctx, op, addr, err, unsafe, shadow, shadow_index=None,
                arm=False, fenced=False, window_exhausted=False):
        ctx.records.append(_Pending(
            op, addr, err, unsafe, shadow, shadow_index=shadow_index,
            arm=arm, fenced=fenced, window_exhausted=window_exhausted,
        ))

    def _note_footprint(self, ctx, op, addr):
        ctx.footprint.append((op.uid, self._page_span(addr, op.size)))

    def _page_span(self, addr, size):
        """Inclusive page range the access can reach, or None when the
        reachable addresses are unbounded."""
        if addr is None or addr.vset is None:
            return None
        return self.window_model.page_span(
            addr.vset.lo, addr.vset.hi + max(size, 1) - 1
        )

    def _aggregate(self, per_pc, rec, ctx):
        rep = per_pc.get(rec.op.pc)
        if rep is None:
            rep = per_pc[rec.op.pc] = LoadReport(rec.op.pc)
        rep.instances += 1
        inst = self._classify_instance(rec, ctx)
        if _RANK[inst.verdict] > _RANK[rep.classification]:
            rep.classification = inst.verdict
            rep.taints = inst.taints
            rep.witness = inst.witness
            rep.shadow = inst.shadow
            rep.reason = inst.reason
            rep.reason_kind = inst.reason_kind
            rep.proof = inst.proof
        elif (
            inst.verdict == rep.classification
            and rep.proof is None
            and inst.proof is not None
        ):
            # Same strength, but this instance carries the interesting
            # discharge argument; record order keeps this deterministic.
            rep.proof = inst.proof

    def _classify_instance(self, rec, ctx):
        op, addr, err = rec.op, rec.addr, rec.err
        if rec.fenced:
            return _Instance(SAFE, proof={
                "kind": "arm-fence",
                "shadow": dict(rec.shadow) if rec.shadow else None,
                "why": (
                    "an older fence in the transient arm cannot complete "
                    "before the squash; this load never issues"
                ),
            })
        if not rec.unsafe:
            # Cannot issue while squashable: harmless no matter what its
            # address computation does.
            return _Instance(SAFE)
        if err is not None or addr is None:
            if isinstance(err, PathLimitError):
                kind = REASON_PATH_LIMIT
            elif isinstance(err, AbstractionError):
                kind = REASON_ABSTRACTION_ERROR
            else:
                kind = REASON_UNMODELED_OP
            return _Instance(
                UNKNOWN,
                reason=f"{type(err).__name__}: {err}" if err else
                "address not evaluable",
                reason_kind=kind,
            )
        discharge = None
        if rec.arm and (rec.window_exhausted or addr.tainted):
            discharge = self._window_discharge(rec, ctx)
        if rec.window_exhausted and discharge is None:
            return _Instance(
                UNKNOWN,
                reason=(
                    f"arm index beyond the {self.window}-op speculation "
                    f"window: issue-before-squash not provable"
                ),
                reason_kind=REASON_WINDOW_EXHAUSTED,
            )
        if not addr.tainted:
            return _Instance(SAFE)
        collapse = self._value_collapse(addr, op.size)
        if collapse is not None:
            return _Instance(SAFE, proof=collapse)
        if discharge is not None:
            return _Instance(SAFE, proof=discharge)
        witness = addr.chain + (
            self._step(
                op, f"0x{op.pc:x}",
                "transmits: issues with this tainted address while "
                "unsafe-speculative",
            ),
        )
        return _Instance(
            TRANSMIT,
            taints=tuple(sorted(addr.taints)),
            witness=witness,
            shadow=rec.shadow,
        )

    # --------------------------------------------------- v2 discharge proofs

    def _value_collapse(self, addr, size):
        """A ``value-killed`` proof when every address the (tainted)
        load can reach lies in one cache line — the access pattern then
        carries no information, tainted or not."""
        if self.precision != "full" or addr.vset is None:
            return None
        line = self.window_model.line_bytes
        lo_line = addr.vset.lo // line
        hi_line = (addr.vset.hi + max(size, 1) - 1) // line
        if lo_line != hi_line:
            return None
        return {
            "kind": "value-killed",
            "lo": f"0x{addr.vset.lo:x}",
            "hi": f"0x{addr.vset.hi:x}",
            "line": f"0x{lo_line * line:x}",
            "why": (
                "every reachable address falls in one cache line; the "
                "access pattern is secret-independent"
            ),
        }

    def _window_discharge(self, rec, ctx):
        """A ``squash-window`` proof when the arm's shadow provably
        resolves (squashing this load) before the load — provably
        TLB-cold — can first issue to memory."""
        if self.precision != "full" or not rec.arm:
            return None
        if ctx.setup is None or rec.shadow_index is None:
            return None
        if ctx.load_counts.get(rec.op.uid, 0) != 1:
            # A second dynamic instance would find the page walked by
            # the first (tlb.fill is synchronous at load start).
            return None
        span = self._page_span(rec.addr, rec.op.size)
        if span is None:
            return None
        if self._setup_pages_overlap(ctx.setup, span):
            return None
        for uid, other in ctx.footprint:
            if uid == rec.op.uid:
                continue
            if other is None or (
                span[0] <= other[1] and other[0] <= span[1]
            ):
                return None
        timing = self.window_model.discharge(
            ctx.ops, rec.shadow_index, ctx.setup
        )
        if timing is None:
            return None
        proof = {
            "kind": "squash-window",
            "shadow": dict(rec.shadow) if rec.shadow else None,
            "pages": [f"0x{span[0]:x}", f"0x{span[1]:x}"],
            "why": (
                "the shadow resolves (squashing this load) before the "
                "page walk for its provably-cold pages can finish"
            ),
        }
        proof.update(timing)
        return proof

    def _setup_pages_overlap(self, setup, span):
        """Whether any page the dynamic setup touches (secret plant,
        writes, warm-up loads, flushes) falls in ``span``."""
        page = self.window_model.tlb.page_bytes
        pages = set()
        lo = setup.get("secret_addr", 0)
        for p in range(lo // page,
                       (lo + max(setup.get("secret_size", 1), 1) - 1)
                       // page + 1):
            pages.add(p)
        for addr, data in setup.get("writes", ()):
            for p in range(addr // page,
                           (addr + max(len(data), 1) - 1) // page + 1):
                pages.add(p)
        for addr in setup.get("warm", ()):
            pages.add(addr // page)
        for addr in setup.get("flush", ()):
            pages.add(addr // page)
        return any(span[0] <= p <= span[1] for p in pages)


def analyze_program(program, model="futuristic", window=64,
                    precision="full"):
    """Convenience wrapper: one program, one attack model."""
    return SpecFlowAnalyzer(
        model=model, window=window, precision=precision
    ).analyze(program)


def analyze_programs(programs, model="futuristic", window=64, analyzer=None,
                     precision="full"):
    """Batch API: analyze many programs through one analyzer instance.

    ``analyzer`` overrides construction entirely (the fuzz campaign
    passes a seeded-weakening subclass here); otherwise one analyzer is
    built from ``model``/``window``/``precision`` and reused, which is
    what keeps a thousand-program sweep allocation-light.  Returns
    reports in input order.
    """
    if analyzer is None:
        analyzer = SpecFlowAnalyzer(
            model=model, window=window, precision=precision
        )
    return [analyzer.analyze(program) for program in programs]
