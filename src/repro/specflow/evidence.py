"""Dynamic cross-validation: specflow verdicts vs. the real pipeline.

The static claim behind a SAFE verdict is observational: across any two
executions that differ only in the secret, the set of cache lines that
load touches *while unsafe-speculative* is identical — there is nothing
for a cache-timing receiver to read off it.  This harness checks exactly
that, per attack PoC:

1. run the PoC twice on the insecure BASE machine, with two different
   planted secrets;
2. a :attr:`~repro.cpu.core.Core.load_issue_probe` records, for every
   load issue during the leak phase, the touched line — but only when
   the issue is *hypothetically unsafe*: on the wrong path, or judged
   squashable by an :class:`~repro.invisispec.policy.ISFuturePolicy`
   consulted over the core's live trackers (BASE itself protects
   nothing, which is the point: we observe what an attacker could);
3. every load PC the analyzer called SAFE must have identical
   per-secret fingerprints; every TRANSMIT PC must differ across the
   secrets (the positive control — if the transmitter's fingerprint did
   not move with the secret, the harness would be measuring nothing).
"""

from __future__ import annotations

from ..configs import ProcessorConfig, Scheme
from ..cpu import isa
from ..cpu.isa import MicroOp, OpKind
from ..invisispec.policy import ISFuturePolicy
from ..security.channel import AttackContext
from .analyzer import SAFE, TRANSMIT, analyze_program
from .programs import attack_programs, hardened_programs

__all__ = ["EvidenceOutcome", "gather_evidence"]

#: two secrets that land on different transmission-array lines for every
#: PoC alphabet in the corpus (they differ mod 256 and mod 64).
_SECRETS = (41, 174)


def _install_probe(context, fingerprints):
    """Attach the hypothetically-unsafe load recorder to every core."""
    judge = ISFuturePolicy()

    def probe(core, entry, unsafe_speculative):
        if entry.is_wrong_path or not judge.load_is_safe(core, entry):
            fingerprints.setdefault(entry.op.pc, set()).add(
                entry.lq_entry.line_addr
            )

    for core in context.system.cores:
        core.load_issue_probe = probe


# --------------------------------------------------------- per-PoC runners
#
# Each runner replays one PoC's leak phase under ``config`` with the
# probe armed, returning {pc: frozenset(line_addr)}.  Setup (planting,
# warming, training, flushing) happens before the probe is installed so
# the fingerprint covers exactly the phase the static program describes.


def _run_spectre_v1(config, secret):
    from ..security.spectre_v1 import SpectreV1Attack

    isa.reset_uids()
    attack = SpectreV1Attack(config)
    attack.plant_secret(secret)
    attack.train()
    attack.victim_uses_secret()
    fingerprints = {}
    _install_probe(attack.context, fingerprints)
    attack.attack_once()
    return fingerprints


def _run_meltdown_style(config, secret):
    from ..security import meltdown_style as m

    isa.reset_uids()
    context = AttackContext(config, num_cores=1)
    context.write_memory(m.ADDR_SECRET, secret & 0xFF)
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x9100, addr=m.ADDR_SECRET, size=1)]
    )
    context.flush(m.ADDR_DELAY)
    fingerprints = {}
    _install_probe(context, fingerprints)
    ops, wrong = m._attack_ops()
    context.run_ops(0, ops, wrong)
    return fingerprints


def _run_ssb(config, secret):
    from ..security import ssb as m

    isa.reset_uids()
    context = AttackContext(config, num_cores=1)
    context.write_memory(m.ADDR_P, secret & 0xFF)
    context.write_memory(m.ADDR_PTR, m.ADDR_P.to_bytes(8, "little"))
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x8100, addr=m.ADDR_P, size=1)]
    )
    context.flush(m.ADDR_PTR)
    fingerprints = {}
    _install_probe(context, fingerprints)
    context.run_ops(0, m._attack_ops())
    return fingerprints


def _run_cross_core(config, secret):
    from ..params import SystemParams
    from ..security import cross_core as m

    isa.reset_uids()
    context = AttackContext(config, params=SystemParams(num_cores=2))
    context.write_memory(m.ADDR_SECRET, secret % m.NUM_VALUES)
    context.write_memory(m.ADDR_LIMIT, 10)
    for i in range(24):
        ops, wrong = m._victim_ops(i % 10, in_bounds=True)
        context.run_ops(0, ops, wrong)
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x6100, addr=m.ADDR_SECRET, size=1)]
    )
    for value in range(m.NUM_VALUES):
        context.flush(m.ADDR_B + m.LINE * value)
    context.flush(m.ADDR_LIMIT)
    fingerprints = {}
    _install_probe(context, fingerprints)
    ops, wrong = m._victim_ops(0, in_bounds=False)
    context.run_ops(0, ops, wrong)
    return fingerprints


def _make_exception_runner(variant):
    def run(config, secret):
        from ..security import exception_attacks as m

        isa.reset_uids()
        secret_addr, array_base, _desc = m.VARIANTS[variant]
        context = AttackContext(config, num_cores=1)
        context.write_memory(secret_addr, secret & 0xFF)
        context.run_ops(
            0, [MicroOp(OpKind.LOAD, pc=0x9100, addr=secret_addr, size=1)]
        )
        context.flush(m.ADDR_DELAY)
        fingerprints = {}
        _install_probe(context, fingerprints)
        ops, wrong = m._attack_ops(secret_addr, array_base)
        context.run_ops(0, ops, wrong)
        return fingerprints

    return run


#: PC for the generic runner's warm-up loads (never analyzed)
_PC_SETUP = 0x5800


def _run_setup_program(prog):
    """Generic runner for any :class:`~.programs.SpecProgram` carrying a
    ``setup`` recipe (the hardened corpus; same dict shape as the fuzz
    harness): plant, write, warm, flush, then replay the program's own
    ops with the probe armed."""

    def run(config, secret):
        setup = prog.setup
        ops, wrong_paths = prog.build()
        context = AttackContext(config, num_cores=1)
        base = setup["secret_addr"]
        for off in range(setup["secret_size"]):
            context.write_memory(base + off, secret & 0xFF)
        for addr, data in setup["writes"]:
            context.write_memory(addr, bytes(data))
        warm_ops = [
            MicroOp(OpKind.LOAD, pc=_PC_SETUP + 0x10 * i, addr=addr, size=1)
            for i, addr in enumerate(setup["warm"])
        ]
        if warm_ops:
            context.run_ops(0, warm_ops)
        for addr in setup["flush"]:
            context.flush(addr)
        fingerprints = {}
        _install_probe(context, fingerprints)
        context.run_ops(0, ops, wrong_paths)
        return fingerprints

    return run


_RUNNERS = {
    "spectre_v1": _run_spectre_v1,
    "meltdown_style": _run_meltdown_style,
    "ssb": _run_ssb,
    "cross_core": _run_cross_core,
    "exception_meltdown": _make_exception_runner("meltdown"),
    "exception_l1tf": _make_exception_runner("l1tf"),
    "exception_lazy_fp": _make_exception_runner("lazy_fp"),
    "exception_rogue_sysreg": _make_exception_runner("rogue_sysreg"),
}


class EvidenceOutcome:
    """Verdict-vs-pipeline comparison for one attack program."""

    __slots__ = ("program", "ok", "violations", "safe_pcs_checked",
                 "transmit_pcs_checked")

    def __init__(self, program, ok, violations, safe_pcs_checked,
                 transmit_pcs_checked):
        self.program = program
        self.ok = ok
        #: human-readable failure strings (empty when ok)
        self.violations = violations
        self.safe_pcs_checked = safe_pcs_checked
        self.transmit_pcs_checked = transmit_pcs_checked

    def to_dict(self):
        return {
            "program": self.program,
            "ok": self.ok,
            "violations": list(self.violations),
            "safe_pcs_checked": [f"0x{pc:x}" for pc in self.safe_pcs_checked],
            "transmit_pcs_checked": [
                f"0x{pc:x}" for pc in self.transmit_pcs_checked
            ],
        }


def gather_evidence(secrets=_SECRETS, programs=None):
    """Run the harness for every attack PoC and every hardened victim
    (or the named subset); returns a list of :class:`EvidenceOutcome`
    in program order."""
    outcomes = []
    for prog in attack_programs() + hardened_programs():
        if programs is not None and prog.name not in programs:
            continue
        report = analyze_program(prog, model="futuristic")
        runner = _RUNNERS.get(prog.name)
        if runner is None:
            runner = _run_setup_program(prog)
        config = ProcessorConfig(scheme=Scheme.BASE)
        fp_a = runner(config, secrets[0])
        fp_b = runner(config, secrets[1])
        violations = []
        safe_pcs = sorted(report.pcs(SAFE))
        transmit_pcs = sorted(report.pcs(TRANSMIT))
        for pc in safe_pcs:
            lines_a = frozenset(fp_a.get(pc, ()))
            lines_b = frozenset(fp_b.get(pc, ()))
            if lines_a != lines_b:
                violations.append(
                    f"SAFE load 0x{pc:x} left secret-dependent unsafe-"
                    f"speculative fingerprints: {sorted(lines_a ^ lines_b)}"
                )
        for pc in transmit_pcs:
            lines_a = frozenset(fp_a.get(pc, ()))
            lines_b = frozenset(fp_b.get(pc, ()))
            if lines_a == lines_b:
                violations.append(
                    f"TRANSMIT load 0x{pc:x} fingerprint did not vary with "
                    f"the secret (positive control failed)"
                )
        outcomes.append(
            EvidenceOutcome(
                prog.name, not violations, violations, safe_pcs, transmit_pcs
            )
        )
    return outcomes
