"""CACTI-style analytical SRAM/CAM model.

The paper sizes InvisiSpec's two per-core structures with CACTI 5 at 16 nm
(Table VII).  CACTI itself is a large C++ tool; for buffers this small
(~2-4 KB) a first-order analytical model reproduces its outputs: area is
cell area times bits plus a periphery overhead that amortizes poorly for
tiny arrays; access time is dominated by decoder + wordline + bitline
sensing; energies scale with the bits switched per access; leakage scales
with total transistor width.

Constants are fitted so the default InvisiSpec configuration lands on the
same magnitudes the paper reports:

========================  ========  ========
Metric                    L1-SB     LLC-SB
========================  ========  ========
Area (mm^2)               0.0174    0.0176
Access time (ps)          97.1      97.1
Dynamic read energy (pJ)  4.4       4.4
Dynamic write energy (pJ) 4.3       4.3
Leakage power (mW)        0.56      0.61
========================  ========  ========
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Fitted 16 nm constants (per-bit / per-access first-order coefficients).
_CELL_AREA_UM2 = 0.37  # 6T SRAM cell + immediate wiring at 16 nm
_PERIPHERY_AREA_UM2 = 10300.0  # decoder/sense/drivers floor for small arrays
_CAM_CELL_FACTOR = 1.9  # 10T CAM cell vs 6T SRAM, tag bits only
_ACCESS_BASE_PS = 62.3
_ACCESS_PER_LOG2_BIT_PS = 2.45
_READ_ENERGY_PER_BIT_FJ = 6.7
_WRITE_ENERGY_PER_BIT_FJ = 6.5
_ENERGY_BASE_PJ = 0.55
_LEAKAGE_PER_KBIT_MW = 0.0255
_LEAKAGE_BASE_MW = 0.07
_CAM_SEARCH_LEAK_FACTOR = 1.12

#: Technology scaling relative to 16 nm (area ~ s^2, energy ~ s, delay ~ s^0.6).
_NODE_REFERENCE_NM = 16.0


@dataclass(frozen=True)
class SRAMEstimate:
    """One structure's cost estimate."""

    name: str
    area_mm2: float
    access_time_ps: float
    read_energy_pj: float
    write_energy_pj: float
    leakage_mw: float

    def as_row(self):
        return [
            self.name,
            round(self.area_mm2, 4),
            round(self.access_time_ps, 1),
            round(self.read_energy_pj, 1),
            round(self.write_energy_pj, 1),
            round(self.leakage_mw, 2),
        ]


class SRAMModel:
    """First-order area/timing/energy model for a small SRAM or CAM."""

    def __init__(self, node_nm=16.0):
        if node_nm <= 0:
            raise ConfigError("node_nm must be positive")
        self.node_nm = node_nm
        self._scale = node_nm / _NODE_REFERENCE_NM

    def estimate(self, name, entries, entry_bits, tag_bits=0, is_cam=False):
        """Estimate one array: ``entries`` x ``entry_bits`` (+CAM tags)."""
        if entries <= 0 or entry_bits <= 0:
            raise ConfigError("entries and entry_bits must be positive")
        data_bits = entries * entry_bits
        cam_bits = entries * tag_bits if is_cam else 0
        plain_tag_bits = 0 if is_cam else entries * tag_bits
        total_bits = data_bits + cam_bits + plain_tag_bits

        area_um2 = (
            (data_bits + plain_tag_bits) * _CELL_AREA_UM2
            + cam_bits * _CELL_AREA_UM2 * _CAM_CELL_FACTOR
            + _PERIPHERY_AREA_UM2
        ) * self._scale**2
        access_ps = (
            _ACCESS_BASE_PS + _ACCESS_PER_LOG2_BIT_PS * math.log2(total_bits)
        ) * self._scale**0.6
        # One access reads/writes a single entry.
        read_pj = (
            _ENERGY_BASE_PJ + entry_bits * _READ_ENERGY_PER_BIT_FJ / 1000.0
        ) * self._scale
        write_pj = (
            _ENERGY_BASE_PJ + entry_bits * _WRITE_ENERGY_PER_BIT_FJ / 1000.0
        ) * self._scale
        leak_mw = (
            _LEAKAGE_BASE_MW + total_bits / 1000.0 * _LEAKAGE_PER_KBIT_MW
        ) * self._scale**2
        if is_cam:
            leak_mw *= _CAM_SEARCH_LEAK_FACTOR
        return SRAMEstimate(
            name, area_um2 / 1e6, access_ps, read_pj, write_pj, leak_mw
        )


def estimate_invisispec_overhead(params=None, node_nm=16.0):
    """Table VII: per-core cost of the L1-SB and the LLC-SB.

    The L1-SB is a RAM indexed by LQ slot (line data + address mask + status
    bits); the LLC-SB is a CAM-tagged buffer (line data + address tag +
    epoch ID), matching Sections VI-A and VI-C.
    """
    if params is None:
        from ..params import SystemParams

        params = SystemParams()
    entries = params.core.load_queue_entries
    line_bits = params.l1d.line_bytes * 8
    model = SRAMModel(node_nm=node_nm)
    l1_sb = model.estimate(
        "L1-SB",
        entries=entries,
        entry_bits=line_bits + params.l1d.line_bytes + 6,  # data+mask+status
    )
    llc_sb = model.estimate(
        "LLC-SB",
        entries=entries,
        entry_bits=line_bits,
        tag_bits=46 + 8,  # line address tag + epoch id
        is_cam=True,
    )
    return [l1_sb, llc_sb]
