"""Analytical hardware cost model (the paper's Table VII used CACTI 5)."""

from .cacti import SRAMModel, estimate_invisispec_overhead

__all__ = ["SRAMModel", "estimate_invisispec_overhead"]
