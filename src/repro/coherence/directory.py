"""Per-bank MESI directory.

The shared L2 is banked (one bank per core, Table IV), each bank holding an
inclusive slice of the address space plus the directory metadata for its
lines: which L1s share the line and which single L1 (if any) owns it in
M or E.  Directory state transitions are applied atomically when a
transaction is processed; message latencies are layered on top by the
hierarchy.  The one modelled transient window is a dirty write-back: while a
write-back is in flight the directory still names the old owner, which is
exactly the window in which a forwarded Spec-GetS can bounce.
"""

from __future__ import annotations

from ..errors import ProtocolError


class DirectoryEntry:
    """Directory metadata for one line homed at this bank."""

    __slots__ = ("line_addr", "sharers", "owner", "wb_pending_until")

    def __init__(self, line_addr):
        self.line_addr = line_addr
        self.sharers = set()
        self.owner = None  # core id holding the line M/E, or None
        self.wb_pending_until = 0  # cycle when an in-flight writeback lands

    @property
    def cached_anywhere(self):
        return bool(self.sharers) or self.owner is not None

    def writeback_in_flight(self, now):
        return now < self.wb_pending_until

    def __repr__(self):
        return (
            f"DirectoryEntry(0x{self.line_addr:x}, owner={self.owner}, "
            f"sharers={sorted(self.sharers)})"
        )


class Directory:
    """Directory metadata for one L2 bank."""

    def __init__(self, bank_id):
        self.bank_id = bank_id
        self._entries = {}  # line_addr -> DirectoryEntry

    def entry(self, line_addr, create=False):
        entry = self._entries.get(line_addr)
        if entry is None and create:
            entry = DirectoryEntry(line_addr)
            self._entries[line_addr] = entry
        return entry

    def drop(self, line_addr):
        self._entries.pop(line_addr, None)

    def add_sharer(self, line_addr, core_id):
        entry = self.entry(line_addr, create=True)
        if entry.owner == core_id:
            return entry
        entry.sharers.add(core_id)
        return entry

    def set_owner(self, line_addr, core_id):
        entry = self.entry(line_addr, create=True)
        entry.owner = core_id
        entry.sharers.discard(core_id)
        return entry

    def demote_owner(self, line_addr):
        """Owner M/E -> S: the owner becomes a plain sharer."""
        entry = self.entry(line_addr)
        if entry is None or entry.owner is None:
            raise ProtocolError(f"demoting line 0x{line_addr:x} with no owner")
        entry.sharers.add(entry.owner)
        entry.owner = None
        return entry

    def remove_core(self, line_addr, core_id):
        entry = self.entry(line_addr)
        if entry is None:
            return None
        entry.sharers.discard(core_id)
        if entry.owner == core_id:
            entry.owner = None
        return entry

    def sharers_other_than(self, line_addr, core_id):
        """Every other core the directory tracks for the line.

        Returned as a *sorted tuple*: callers iterate it to send
        invalidations, and message order feeds the NoC's accounting and
        ack timing, so set-iteration order must never leak into cycles
        (``reprolint``'s ``unordered-iteration`` rule).
        """
        entry = self.entry(line_addr)
        if entry is None:
            return ()
        others = set(entry.sharers)
        others.discard(core_id)
        if entry.owner is not None and entry.owner != core_id:
            others.add(entry.owner)
        return tuple(sorted(others))

    def all_entries(self):
        return list(self._entries.values())

    def __len__(self):
        return len(self._entries)
