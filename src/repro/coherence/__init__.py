"""Directory-based MESI coherence with the InvisiSpec Spec-GetS transaction."""

from .directory import Directory, DirectoryEntry
from .hierarchy import CacheHierarchy, MemRequest, RequestKind
from .mesi import MESIState
from .messages import MessageType
from .protocol import (
    DirOutcome,
    L1Event,
    L1_TRANSITIONS,
    VISIBLE_EFFECTS,
    apply_l1_event,
    route_request,
)

__all__ = [
    "Directory",
    "DirectoryEntry",
    "CacheHierarchy",
    "MemRequest",
    "RequestKind",
    "MESIState",
    "MessageType",
    "DirOutcome",
    "L1Event",
    "L1_TRANSITIONS",
    "VISIBLE_EFFECTS",
    "apply_l1_event",
    "route_request",
]
