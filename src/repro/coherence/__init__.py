"""Directory-based MESI coherence with the InvisiSpec Spec-GetS transaction."""

from .directory import Directory, DirectoryEntry
from .hierarchy import CacheHierarchy, MemRequest, RequestKind
from .mesi import MESIState
from .messages import MessageType

__all__ = [
    "Directory",
    "DirectoryEntry",
    "CacheHierarchy",
    "MemRequest",
    "RequestKind",
    "MESIState",
    "MessageType",
]
