"""Transaction vocabulary: request kinds, requests, completion records.

Extracted from :mod:`repro.coherence.hierarchy` so the declarative
protocol tables (:mod:`repro.coherence.protocol`) and the offline model
checker can name request kinds without importing the full timed
hierarchy.  ``hierarchy`` re-exports everything here, so existing
imports keep working.
"""

from __future__ import annotations

import enum


class RequestKind(enum.Enum):
    LOAD = "load"
    SPEC_LOAD = "spec_load"
    VALIDATE = "validate"
    EXPOSE = "expose"
    STORE = "store"
    PREFETCH = "prefetch"
    SPEC_PREFETCH = "spec_prefetch"

    @property
    def invisible(self):
        return self in (RequestKind.SPEC_LOAD, RequestKind.SPEC_PREFETCH)

    @property
    def visible_read(self):
        return self in (
            RequestKind.LOAD,
            RequestKind.VALIDATE,
            RequestKind.EXPOSE,
            RequestKind.PREFETCH,
        )


class MemRequest:
    """One memory transaction submitted by a core."""

    __slots__ = (
        "core_id",
        "addr",
        "size",
        "kind",
        "seq",
        "lq_index",
        "epoch",
        "on_complete",
        "store_value",
        "bounces",
        "accounted",
    )

    def __init__(
        self,
        core_id,
        addr,
        size,
        kind,
        seq=0,
        lq_index=0,
        epoch=0,
        on_complete=None,
        store_value=0,
    ):
        self.core_id = core_id
        self.addr = addr
        self.size = size
        self.kind = kind
        self.seq = seq
        self.lq_index = lq_index
        self.epoch = epoch
        self.on_complete = on_complete
        self.store_value = store_value
        self.bounces = 0
        self.accounted = False


class AccessResult:
    """Completion record handed to ``MemRequest.on_complete``."""

    __slots__ = ("level", "data", "version", "ready_cycle", "bounces")

    def __init__(self, level, data, version, ready_cycle, bounces=0):
        self.level = level  # 'l1' | 'l2' | 'remote_l1' | 'dram' | 'llc_sb' | 'wb'
        self.data = data  # tuple of byte values, or None for stores
        self.version = version
        self.ready_cycle = ready_cycle
        self.bounces = bounces
