"""Coherence message vocabulary.

``SPEC_GETS`` is the transaction InvisiSpec adds (Section VI-E1): it returns
the latest copy of a line without changing any cache or directory state, and
is *not* ordered by the directory — a forwarded Spec-GetS that reaches a
core which has lost ownership bounces back to the requester, which retries.
"""

from __future__ import annotations

import enum


class MessageType(enum.Enum):
    GETS = "GetS"  # read request (load, validation, exposure)
    GETX = "GetX"  # write / ownership request
    UPGRADE = "Upgrade"  # S -> M without data
    SPEC_GETS = "Spec-GetS"  # InvisiSpec invisible read
    FWD_GETS = "Fwd-GetS"  # directory forwards read to M/E owner
    FWD_GETX = "Fwd-GetX"
    FWD_SPEC_GETS = "Fwd-Spec-GetS"
    INV = "Inv"  # invalidate a sharer
    INV_ACK = "Inv-Ack"
    DATA = "Data"  # data response (line)
    NACK = "Nack"  # Spec-GetS bounce
    WRITEBACK = "Writeback"  # dirty line to its home bank
    WB_ACK = "WB-Ack"

    @property
    def carries_data(self):
        return self in (MessageType.DATA, MessageType.WRITEBACK)
