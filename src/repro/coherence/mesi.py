"""MESI cache-line states.

The private L1s hold lines in M/E/S/I.  The shared L2 is inclusive and its
directory tracks, per line, the set of L1 sharers and the single L1 owner
(a core holding the line in M or E).
"""

from __future__ import annotations

import enum


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def readable(self):
        return self is not MESIState.INVALID

    @property
    def writable(self):
        return self in (MESIState.MODIFIED, MESIState.EXCLUSIVE)

    @property
    def dirty(self):
        return self is MESIState.MODIFIED
