"""Declarative MESI/InvisiSpec protocol tables.

The per-line protocol logic used to be inlined across
:mod:`repro.coherence.hierarchy`; this module lifts it into explicit,
enumerable tables so that the *same* rules drive both the live simulator
and the offline exhaustive model checker
(:mod:`repro.staticcheck.model`).  Three tables are exported:

* :data:`L1_TRANSITIONS` — the complete L1 MESI next-state function,
  keyed by ``(MESIState, L1Event)``.  Undefined pairs are protocol
  errors, not silent no-ops.
* :func:`route_request` — the directory's dispatch decision for one
  transaction, as a pure function of the request kind and the
  directory's view of the line (remote owner? L2 resident? write-back
  in flight?).  This is the decision tree at the top of
  ``CacheHierarchy._transaction_steps`` and friends, made enumerable.
* :data:`VISIBLE_EFFECTS` — for every routing outcome, the set of
  observer-visible state components the transaction is *permitted* to
  mutate.  Invisible (Spec-GetS) outcomes map to the empty set; the
  model checker enforces the table against every transition it
  explores, and the runtime sanitizer checks the same property
  dynamically (docs/SANITIZER.md).

The tables are deliberately side-effect free: no counters, no stats, no
kernel access (``reprolint``'s ``stats-in-protocol`` rule enforces
this), so the model checker can call them millions of times without
dragging simulator state along.
"""

from __future__ import annotations

import enum

from ..errors import ProtocolError
from .requests import RequestKind
from .mesi import MESIState


class L1Event(enum.Enum):
    """Events that move one L1 copy between MESI states."""

    FILL_SHARED = "fill_shared"  # read fill, other copies exist
    FILL_EXCLUSIVE = "fill_exclusive"  # read fill, sole copy
    FILL_MODIFIED = "fill_modified"  # store performs into the L1
    STORE_HIT = "store_hit"  # store hits a writable copy
    UPGRADE = "upgrade"  # S -> M ownership acquisition
    DEMOTE = "demote"  # remote visible read demotes the owner
    INVALIDATE = "invalidate"  # Inv delivery (coherence or recall)
    EVICT = "evict"  # capacity eviction
    SPEC_PROBE = "spec_probe"  # Spec-GetS touches the copy: identity


M, E, S, I = (
    MESIState.MODIFIED,
    MESIState.EXCLUSIVE,
    MESIState.SHARED,
    MESIState.INVALID,
)

#: The complete L1 next-state function.  Every state change an L1 copy is
#: allowed to make appears here; anything else is a ProtocolError.
L1_TRANSITIONS = {
    (I, L1Event.FILL_SHARED): S,
    (I, L1Event.FILL_EXCLUSIVE): E,
    (I, L1Event.FILL_MODIFIED): M,
    # A store performing into a copy that is already resident writable.
    (E, L1Event.FILL_MODIFIED): M,
    (M, L1Event.FILL_MODIFIED): M,
    (E, L1Event.STORE_HIT): M,
    (M, L1Event.STORE_HIT): M,
    (S, L1Event.UPGRADE): M,
    (M, L1Event.DEMOTE): S,
    (E, L1Event.DEMOTE): S,
    (M, L1Event.INVALIDATE): I,
    (E, L1Event.INVALIDATE): I,
    (S, L1Event.INVALIDATE): I,
    (M, L1Event.EVICT): I,
    (E, L1Event.EVICT): I,
    (S, L1Event.EVICT): I,
    # Spec-GetS is the identity on every state, including INVALID: the
    # paper's invisibility requirement stated as a transition rule.
    (M, L1Event.SPEC_PROBE): M,
    (E, L1Event.SPEC_PROBE): E,
    (S, L1Event.SPEC_PROBE): S,
    (I, L1Event.SPEC_PROBE): I,
}


def apply_l1_event(state, event):
    """Next L1 state for ``event``; raises ProtocolError if undefined."""
    try:
        return L1_TRANSITIONS[(state, event)]
    except KeyError:
        raise ProtocolError(
            f"undefined L1 transition: {state.name} x {event.value}"
        ) from None


class DirOutcome(enum.Enum):
    """How the directory routes one transaction (the dispatch decision
    inlined in ``CacheHierarchy``, as an enumerable value)."""

    L1_HIT = "l1_hit"  # served locally, no directory involvement
    STORE_UPGRADE = "store_upgrade"  # store hit in S: invalidate sharers
    OWNER_FORWARD = "owner_forward"  # visible read forwarded to M/E owner
    OWNER_INVALIDATE = "owner_invalidate"  # GetX invalidates the owner
    SPEC_FORWARD = "spec_forward"  # Spec-GetS streamed from the owner
    SPEC_BOUNCE = "spec_bounce"  # Spec-GetS nacked (wb in flight)
    L2_READ = "l2_read"  # visible read served by the L2 bank
    L2_STORE = "l2_store"  # GetX served by L2, sharers invalidated
    SPEC_L2_READ = "spec_l2_read"  # Spec-GetS served by L2, no changes
    MEM_READ = "mem_read"  # visible read from DRAM, fills L2+L1
    MEM_STORE = "mem_store"  # GetX from DRAM
    SPEC_MEM_READ = "spec_mem_read"  # Spec-GetS from DRAM -> LLC-SB only


def route_request(kind, l1_state, owner_is_remote, l2_resident, wb_in_flight):
    """Pure routing decision for one transaction.

    Mirrors (and is consulted by) the hierarchy's dispatch: L1 hit first,
    then remote-owner, then L2, then memory.  ``owner_is_remote`` means
    the directory names an owner other than the requester.
    """
    if kind is RequestKind.STORE:
        if l1_state.writable:
            return DirOutcome.L1_HIT
        if l1_state is S:
            return DirOutcome.STORE_UPGRADE
        if owner_is_remote:
            return DirOutcome.OWNER_INVALIDATE
        if l2_resident:
            return DirOutcome.L2_STORE
        return DirOutcome.MEM_STORE
    if l1_state.readable and not kind.invisible:
        return DirOutcome.L1_HIT
    if kind.invisible:
        # An L1 hit also serves a Spec-GetS (probe only, no touch); the
        # model checker treats that as the identity it is.
        if l1_state.readable:
            return DirOutcome.L1_HIT
        if owner_is_remote:
            if wb_in_flight:
                return DirOutcome.SPEC_BOUNCE
            return DirOutcome.SPEC_FORWARD
        if l2_resident:
            return DirOutcome.SPEC_L2_READ
        return DirOutcome.SPEC_MEM_READ
    if owner_is_remote:
        return DirOutcome.OWNER_FORWARD
    if l2_resident:
        return DirOutcome.L2_READ
    return DirOutcome.MEM_READ


#: Observer-visible state components a transaction outcome may mutate.
#: Component names: ``l1`` (any L1 tag/state/replacement), ``l2`` (bank
#: tag/replacement), ``dir`` (owner/sharer sets), ``image`` (memory
#: image version).  The invisible outcomes are the empty set — that row
#: *is* the InvisiSpec theorem, and both the model checker (statically)
#: and the sanitizer (dynamically) enforce it.
VISIBLE_EFFECTS = {
    DirOutcome.L1_HIT: frozenset({"l1", "dir"}),
    DirOutcome.STORE_UPGRADE: frozenset({"l1", "dir", "image"}),
    DirOutcome.OWNER_FORWARD: frozenset({"l1", "l2", "dir"}),
    DirOutcome.OWNER_INVALIDATE: frozenset({"l1", "dir", "image"}),
    DirOutcome.L2_READ: frozenset({"l1", "l2", "dir"}),
    DirOutcome.L2_STORE: frozenset({"l1", "l2", "dir", "image"}),
    DirOutcome.MEM_READ: frozenset({"l1", "l2", "dir"}),
    DirOutcome.MEM_STORE: frozenset({"l1", "l2", "dir", "image"}),
    DirOutcome.SPEC_FORWARD: frozenset(),
    DirOutcome.SPEC_BOUNCE: frozenset(),
    DirOutcome.SPEC_L2_READ: frozenset(),
    DirOutcome.SPEC_MEM_READ: frozenset(),
}


def outcome_is_invisible(outcome):
    """True when the outcome must leave observer-visible state untouched."""
    return not VISIBLE_EFFECTS[outcome]
