"""Coherence invariant checking.

The classic single-writer/multiple-reader (SWMR) invariant plus
directory/L1 agreement, checkable at any quiesced point of a simulation.
The litmus tests call this after every run; it is also handy in notebooks
when extending the protocol.

Because invalidations and fills travel with latency, the checker is
meaningful when the machine is quiet (no events in flight); mid-flight
checks may report transient disagreement that is not a bug.
"""

from __future__ import annotations

from ..errors import ProtocolError
from .mesi import MESIState


def check_swmr(hierarchy):
    """Single writer or many readers, never both, for every line."""
    holders = {}  # line -> [(core, state)]
    for core_id, l1 in enumerate(hierarchy.l1s):
        for line in l1.resident_lines():
            entry = l1.lookup(line, touch=False)
            holders.setdefault(line, []).append((core_id, entry.state))
    for line, entries in holders.items():
        writers = [c for c, s in entries if s.writable]
        readers = [c for c, s in entries if s is MESIState.SHARED]
        if writers and (len(writers) > 1 or readers):
            raise ProtocolError(
                f"SWMR violated for 0x{line:x}: writers={writers}, "
                f"readers={readers}"
            )
    return True


def check_directory_agreement(hierarchy):
    """Every cached L1 line is tracked by its home directory."""
    for core_id, l1 in enumerate(hierarchy.l1s):
        for line in l1.resident_lines():
            bank = hierarchy.bank_of(line)
            entry = hierarchy.dirs[bank].entry(line)
            if entry is None:
                raise ProtocolError(
                    f"core {core_id} holds 0x{line:x} but the directory "
                    f"has no entry"
                )
            tracked = entry.owner == core_id or core_id in entry.sharers
            if not tracked:
                raise ProtocolError(
                    f"core {core_id} holds 0x{line:x} untracked "
                    f"(owner={entry.owner}, sharers={sorted(entry.sharers)})"
                )
    return True


def check_all(hierarchy):
    """Every invariant: SWMR, directory agreement, inclusion."""
    check_swmr(hierarchy)
    check_directory_agreement(hierarchy)
    hierarchy.check_inclusion()
    return True
