"""Coherence invariant checking.

The classic single-writer/multiple-reader (SWMR) invariant plus
directory/L1 agreement and inclusion, checkable at any quiesced point of a
simulation.  The litmus tests call this after every run; it is also handy
in notebooks when extending the protocol.

Because invalidations and fills travel with latency, the whole-hierarchy
checkers are meaningful when the machine is quiet (no events in flight);
mid-flight checks may report transient disagreement that is not a bug.
The line-scoped :func:`line_coherence_problems` exists for exactly that
case: the runtime sanitizer (:mod:`repro.sanitizer`) calls it on every
state transition with a ``skip_cores`` set naming the cores with an
invalidation in flight for the line, so transient windows do not produce
false positives.
"""

from __future__ import annotations

from ..errors import ProtocolError
from .mesi import MESIState


def check_swmr(hierarchy):
    """Single writer or many readers, never both, for every line."""
    holders = {}  # line -> [(core, state)]
    for core_id, l1 in enumerate(hierarchy.l1s):
        for line in l1.resident_lines():
            entry = l1.lookup(line, touch=False)
            holders.setdefault(line, []).append((core_id, entry.state))
    for line, entries in holders.items():
        writers = [c for c, s in entries if s.writable]
        readers = [c for c, s in entries if s is MESIState.SHARED]
        if writers and (len(writers) > 1 or readers):
            raise ProtocolError(
                f"SWMR violated for 0x{line:x}: writers={writers}, "
                f"readers={readers}"
            )
    return True


def check_directory_agreement(hierarchy):
    """Every cached L1 line is tracked by its home directory."""
    for core_id, l1 in enumerate(hierarchy.l1s):
        for line in l1.resident_lines():
            bank = hierarchy.bank_of(line)
            entry = hierarchy.dirs[bank].entry(line)
            if entry is None:
                raise ProtocolError(
                    f"core {core_id} holds 0x{line:x} but the directory "
                    f"has no entry"
                )
            tracked = entry.owner == core_id or core_id in entry.sharers
            if not tracked:
                raise ProtocolError(
                    f"core {core_id} holds 0x{line:x} untracked "
                    f"(owner={entry.owner}, sharers={sorted(entry.sharers)})"
                )
    return True


def check_inclusion(hierarchy):
    """Inclusive-hierarchy invariant: every L1-resident line is in L2."""
    for core_id, l1 in enumerate(hierarchy.l1s):
        for line in l1.resident_lines():
            bank = hierarchy.bank_of(line)
            if not hierarchy.l2[bank].contains(line):
                raise ProtocolError(
                    f"inclusion violated: core {core_id} holds 0x{line:x} "
                    f"absent from L2 bank {bank}"
                )
    return True


def line_coherence_problems(hierarchy, line, skip_cores=frozenset()):
    """Incremental per-line checks; returns ``[(kind, message, core)]``.

    ``skip_cores`` names cores with an in-flight invalidation (or other
    scheduled state change) for ``line``: their stale copy is expected and
    must not be reported.  Used by the runtime sanitizer after every
    coherence state transition touching ``line``.
    """
    problems = []
    holders = []
    for core_id, l1 in enumerate(hierarchy.l1s):
        if core_id in skip_cores:
            continue
        entry = l1.lookup(line, touch=False)
        if entry is not None:
            holders.append((core_id, entry.state))

    writers = [c for c, s in holders if s.writable]
    readers = [c for c, s in holders if s is MESIState.SHARED]
    if writers and (len(writers) > 1 or readers):
        problems.append((
            "swmr",
            f"SWMR violated: writers={writers}, readers={readers}",
            writers[0],
        ))

    bank = hierarchy.bank_of(line)
    dentry = hierarchy.dirs[bank].entry(line)
    for core_id, _state in holders:
        if dentry is None:
            problems.append((
                "directory",
                f"core {core_id} holds the line but the directory has "
                f"no entry",
                core_id,
            ))
            continue
        if not (dentry.owner == core_id or core_id in dentry.sharers):
            problems.append((
                "directory",
                f"core {core_id} holds the line untracked "
                f"(owner={dentry.owner}, sharers={sorted(dentry.sharers)})",
                core_id,
            ))

    for core_id, _state in holders:
        if not hierarchy.l2[bank].contains(line):
            problems.append((
                "inclusion",
                f"core {core_id} holds the line absent from L2 bank {bank}",
                core_id,
            ))
    return problems


def check_all(hierarchy):
    """Every invariant: SWMR, directory agreement, inclusion."""
    check_swmr(hierarchy)
    check_directory_agreement(hierarchy)
    check_inclusion(hierarchy)
    return True
