"""The multiprocessor data cache hierarchy.

This module ties together the per-core L1Ds, the banked inclusive shared L2
with its MESI directory, the mesh NoC, DRAM, and (when InvisiSpec is
enabled) the per-core LLC speculative buffers.  Cores submit
:class:`MemRequest` objects; the hierarchy computes transaction latencies,
accounts every message on the NoC, applies coherence state changes, and
fires the request callback when data is ready.

Transaction kinds
-----------------

* ``LOAD`` — a safe/visible read (GetS).  Fills L1 and L2, updates
  replacement and directory state.
* ``SPEC_LOAD`` — InvisiSpec's Spec-GetS (Section VI-E1): returns the latest
  copy of the line *without changing any cache, replacement, or directory
  state*.  On an LLC miss the line is read from memory and a copy is
  deposited in the requesting core's LLC-SB.  A Spec-GetS forwarded to an
  owner that is writing the line back bounces and retries.
* ``VALIDATE`` / ``EXPOSE`` — the second access of a USL (Section V-A4).
  Behaves like a visible GetS; on an LLC miss it first checks the
  requester's LLC-SB (address + epoch match) to avoid a second DRAM access.
* ``STORE`` — GetX/upgrade.  Invalidates remote sharers; completion waits
  for the invalidation round trip.  The global memory image is updated at
  completion (the store *performs*, Section II-B).
* ``PREFETCH`` — a visible software-prefetch or at-visibility hardware
  prefetch (GetS into the caches).

Timing simplification: directory state transitions are applied atomically
when the transaction is processed at its home bank; wire, bank-occupancy,
and DRAM latencies are layered on top of that atomic step.  The one
transient window kept is the dirty write-back (its in-flight period is
when Spec-GetS bounces happen).
"""

from __future__ import annotations

from ..mem.cache import CacheArray
from ..mem.dram import DRAMModel
from ..mem.mshr import MSHRFile
from ..network.noc import NoC, TrafficCategory
from .directory import Directory
from .mesi import MESIState
from .protocol import DirOutcome, L1Event, apply_l1_event, route_request
from .requests import AccessResult, MemRequest, RequestKind

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "MemRequest",
    "RequestKind",
]


_CATEGORY_BY_KIND = {
    RequestKind.LOAD: TrafficCategory.NORMAL,
    RequestKind.STORE: TrafficCategory.NORMAL,
    RequestKind.PREFETCH: TrafficCategory.NORMAL,
    RequestKind.SPEC_LOAD: TrafficCategory.SPECLOAD,
    RequestKind.SPEC_PREFETCH: TrafficCategory.SPECLOAD,
    RequestKind.VALIDATE: TrafficCategory.EXPOSE_VALIDATE,
    RequestKind.EXPOSE: TrafficCategory.EXPOSE_VALIDATE,
}


#: Part of the L2 round trip charged before the directory/tag lookup.
_L2_TAG_FRACTION = 0.5


class CacheHierarchy:
    """L1s + banked shared L2 + directory + NoC + DRAM (+ LLC-SBs)."""

    #: Cycles a bank is occupied per transaction (pipelined bank port).
    BANK_OCCUPANCY = 2
    #: Cycles an L1 port is occupied per access.
    L1_OCCUPANCY = 1
    #: Delay before a bounced Spec-GetS retries.
    BOUNCE_RETRY_DELAY = 4
    #: Cycles a dirty write-back stays in flight (directory transient).
    WRITEBACK_DELAY = 6

    def __init__(self, params, kernel, image, counters, seed=0, faults=None):
        self.params = params
        self.kernel = kernel
        self.image = image
        self.space = image.space
        self.counters = counters
        #: Optional FaultInjector shared with the NoC, DRAM and kernel;
        #: the hierarchy itself consults the ``inv.ack_drop`` and
        #: ``mshr.stuck`` sites.
        self.faults = faults
        self.noc = NoC(params.network, faults=faults)
        self.dram = DRAMModel(latency=params.dram_latency, faults=faults)
        self.num_banks = params.num_l2_banks
        self.l1s = [
            CacheArray(params.l1d, MESIState.INVALID, seed=seed + i)
            for i in range(params.num_cores)
        ]
        self.l2 = [
            CacheArray(params.l2_bank, MESIState.INVALID, seed=seed + 100 + b)
            for b in range(self.num_banks)
        ]
        self.dirs = [Directory(b) for b in range(self.num_banks)]
        self.mshrs = [
            MSHRFile(params.core.mshr_entries) for _ in range(params.num_cores)
        ]
        self.llc_sbs = None  # list of LLCSpeculativeBuffer, set by the system
        #: Optional runtime sanitizer (:mod:`repro.sanitizer`): notified
        #: around invisible transactions, on every visible coherence state
        #: transition, and when invalidations are scheduled/delivered.
        self.monitor = None
        self._cores = [None] * params.num_cores
        self._mshr_waiting = [[] for _ in range(params.num_cores)]
        self._l1_ports = [[0, 0] for _ in range(params.num_cores)]  # [cycle, used]
        self._bank_free = [0] * self.num_banks
        self._mem_node = 0

    # ------------------------------------------------------------------ wiring

    def attach_core(self, core_id, core):
        """Register the core for invalidation/eviction callbacks."""
        self._cores[core_id] = core

    def set_llc_sbs(self, llc_sbs):
        self.llc_sbs = llc_sbs

    # ------------------------------------------------------------- geometry

    def bank_of(self, line_addr):
        return self.space.line_index(line_addr) % self.num_banks

    def _bank_node(self, bank):
        return bank % self.params.network.num_nodes

    def _core_node(self, core_id):
        return core_id % self.params.network.num_nodes

    # ------------------------------------------------------------- port model

    def _l1_slot(self, core_id, now):
        """First cycle >= now with a free L1 port for this core."""
        port = self._l1_ports[core_id]
        if port[0] != now:
            if port[0] < now:
                port[0] = now
                port[1] = 0
        if port[1] < self.params.l1d.ports:
            port[1] += 1
            return port[0]
        port[0] += 1
        port[1] = 1
        return port[0]

    def _bank_slot(self, bank, arrival):
        """Serialize transactions through a bank's single port."""
        start = max(arrival, self._bank_free[bank])
        self._bank_free[bank] = start + self.BANK_OCCUPANCY
        self.counters.bump("l2.bank_queue_cycles", start - arrival)
        return start

    # ------------------------------------------------------- sanitizer hooks

    def _note_line(self, line, event, core_id=None):
        """Tell the sanitizer a visible coherence transition touched a line."""
        if self.monitor is not None:
            self.monitor.on_line_event(line, event, core_id=core_id)

    # ---------------------------------------------------------------- submit

    def submit(self, req):
        """Entry point: process ``req`` starting at the current cycle."""
        monitor = self.monitor
        if monitor is not None and req.kind.invisible:
            # Fingerprint the observer-visible state around the synchronous
            # processing of a Spec-GetS: any change is a visibility bug.
            line = self.space.line_of(req.addr)
            monitor.invisible_enter(req, line)
            try:
                self._process(req)
            finally:
                monitor.invisible_exit(req, line)
            return
        self._process(req)

    def _process(self, req):
        now = self.kernel.cycle
        line = self.space.line_of(req.addr)
        slot = self._l1_slot(req.core_id, now)
        l1 = self.l1s[req.core_id]
        kind = req.kind
        first_attempt = not req.accounted
        if first_attempt:
            req.accounted = True
            self.counters.bump(f"hierarchy.requests.{kind.value}")

        entry = l1.lookup(line, touch=not kind.invisible)
        l1_state = entry.state if entry is not None else MESIState.INVALID
        # Only the L1-local routing outcomes are decided here; the remote
        # facts (owner, L2 residency, write-back windows) are resolved at
        # the home bank inside _transaction_steps with the same table.
        outcome = route_request(kind, l1_state, False, False, False)
        if outcome is DirOutcome.STORE_UPGRADE:
            self._upgrade(req, line, slot)
            return
        if outcome is DirOutcome.L1_HIT:
            if kind is RequestKind.STORE:
                entry.state = apply_l1_event(entry.state, L1Event.STORE_HIT)
                self.dirs[self.bank_of(line)].set_owner(line, req.core_id)
                self._note_line(line, "store_l1_hit", core_id=req.core_id)
                ready = slot + self.params.l1d.round_trip_latency
                self._finish_store(req, ready, "l1", _CATEGORY_BY_KIND[kind])
                return
            l1.stat_hits += 1
            self.counters.bump(f"hierarchy.l1_hits.{kind.value}")
            ready = slot + self.params.l1d.round_trip_latency
            self._complete_read(req, ready, "l1")
            return

        self._miss(req, line, slot, first_attempt)

    # ------------------------------------------------------------- miss path

    def _miss(self, req, line, slot, first_attempt=True):
        mshr = self.mshrs[req.core_id]
        existing = mshr.lookup(line)
        if existing is not None and self._can_merge(req, existing):
            # A secondary miss (hit-under-miss): accounted separately, not
            # as a demand L1 miss.
            mshr.merge(line, req)
            self.counters.bump("hierarchy.mshr_merges")
            if first_attempt:
                self.counters.bump(
                    f"hierarchy.l1_misses_secondary.{req.kind.value}"
                )
            return
        if first_attempt:
            if req.kind is not RequestKind.STORE:
                self.l1s[req.core_id].stat_misses += 1
            self.counters.bump(f"hierarchy.l1_misses.{req.kind.value}")
        if existing is not None:
            # Program-order or kind-class conflict: issue an independent
            # transaction (extra Spec-GetS in flight for the same line are
            # explicitly allowed, Section VI-A2).
            self.counters.bump("hierarchy.mshr_bypass")
            self._transaction(req, line, slot)
            return
        if mshr.full:
            self.counters.bump("hierarchy.mshr_full_stalls")
            self._mshr_waiting[req.core_id].append(req)
            return
        mshr.allocate(line, req.seq, req.kind.invisible, self.kernel.cycle)
        self._transaction(req, line, slot)

    def _can_merge(self, req, mshr_entry):
        # Never let a request reuse state allocated by a younger instruction
        # (Section VII); never mix invisible with visible transactions; and
        # stores always need their own GetX.
        if req.kind is RequestKind.STORE:
            return False
        if req.seq < mshr_entry.allocator_seq:
            return False
        return req.kind.invisible == mshr_entry.speculative

    # -------------------------------------------------------- the transaction

    def _transaction(self, req, line, slot):
        """Compute the full remote transaction for a primary request.

        Bounced Spec-GetS retries re-enter here directly (not via submit),
        so the sanitizer's invisible guard wraps this level too; the depth
        counter in the monitor keeps the submit -> _transaction nesting to
        one fingerprint pair.
        """
        monitor = self.monitor
        if monitor is not None and req.kind.invisible:
            monitor.invisible_enter(req, line)
            try:
                self._transaction_steps(req, line, slot)
            finally:
                monitor.invisible_exit(req, line)
            return
        self._transaction_steps(req, line, slot)

    def _transaction_steps(self, req, line, slot):
        kind = req.kind
        cat = _CATEGORY_BY_KIND[kind]
        bank = self.bank_of(line)
        core_node = self._core_node(req.core_id)
        bank_node = self._bank_node(bank)

        arrive = slot + self.noc.send(core_node, bank_node, False, cat)
        t_bank = self._bank_slot(bank, arrive)
        tag_lat = max(1, int(self.params.l2_bank.round_trip_latency * _L2_TAG_FRACTION))
        t_dir = t_bank + tag_lat

        directory = self.dirs[bank]
        dentry = directory.entry(line)
        owner = dentry.owner if dentry else None

        outcome = route_request(
            kind,
            MESIState.INVALID,  # the local L1 already missed
            owner is not None and owner != req.core_id,
            self.l2[bank].contains(line),
            dentry.writeback_in_flight(t_dir) if dentry is not None else False,
        )
        if outcome in (
            DirOutcome.SPEC_BOUNCE,
            DirOutcome.SPEC_FORWARD,
            DirOutcome.OWNER_FORWARD,
            DirOutcome.OWNER_INVALIDATE,
        ):
            self._remote_owner_path(
                req, line, slot, bank, dentry, t_dir, cat, outcome
            )
        elif outcome in (
            DirOutcome.L2_READ,
            DirOutcome.L2_STORE,
            DirOutcome.SPEC_L2_READ,
        ):
            self._l2_hit_path(req, line, bank, t_bank, cat)
        else:
            self._memory_path(req, line, bank, t_dir, cat)

    # -------------------------------------------------- path: remote L1 owner

    def _remote_owner_path(self, req, line, slot, bank, dentry, t_dir, cat, outcome):
        kind = req.kind
        owner = dentry.owner
        bank_node = self._bank_node(bank)
        owner_node = self._core_node(owner)
        core_node = self._core_node(req.core_id)

        if outcome is DirOutcome.SPEC_BOUNCE:
            # The owner is losing the line: bounce the Spec-GetS.
            self.noc.send(bank_node, owner_node, False, cat)  # forward
            nack_lat = self.noc.send(owner_node, core_node, False, cat)
            req.bounces += 1
            self.counters.bump("invisispec.spec_gets_bounces")
            retry_at = t_dir + nack_lat + self.BOUNCE_RETRY_DELAY
            # Retry the transaction directly: re-entering submit() would
            # merge the request into its own still-allocated MSHR.
            self.kernel.schedule_at(
                retry_at, lambda: self._transaction(req, line, self.kernel.cycle)
            )
            return

        fwd_lat = self.noc.send(bank_node, owner_node, False, cat)
        t_owner = t_dir + fwd_lat + self.params.l1d.round_trip_latency
        data_lat = self.noc.send(owner_node, core_node, True, cat)
        ready = t_owner + data_lat
        self.counters.bump(f"hierarchy.remote_l1.{kind.value}")

        if kind is RequestKind.STORE:
            # GetX: the owner is invalidated; ownership moves.
            self._deliver_invalidation(owner, line, t_owner, cat, "coherence")
            dentry.owner = req.core_id
            dentry.sharers.discard(req.core_id)
            self._note_line(line, "store_ownership_move", core_id=req.core_id)
            self._finish_store(req, ready, "remote_l1", cat)
            return

        if kind.invisible:
            # Spec-GetS: data streamed from the owner, no state changes.
            self._complete_read(req, ready, "remote_l1")
            return

        # Visible read: owner demotes M/E -> S and writes the line back to
        # the L2 bank (data message), the requester becomes a sharer.
        owner_entry = self.l1s[owner].lookup(line, touch=False)
        if owner_entry is not None:
            if owner_entry.state.dirty:
                self.noc.send(owner_node, bank_node, True, cat)  # writeback
            owner_entry.state = apply_l1_event(owner_entry.state, L1Event.DEMOTE)
        self.dirs[bank].demote_owner(line)
        self.dirs[bank].add_sharer(line, req.core_id)
        if not self.l2[bank].contains(line):
            self._fill_l2(bank, line, t_owner, cat)
        self._note_line(line, "owner_demoted", core_id=req.core_id)
        self._schedule_visible_fill(req, line, ready, "remote_l1", cat)

    # --------------------------------------------------------- path: L2 hit

    def _l2_hit_path(self, req, line, bank, t_bank, cat):
        kind = req.kind
        bank_node = self._bank_node(bank)
        core_node = self._core_node(req.core_id)
        self.l2[bank].lookup(line, touch=not kind.invisible)
        self.l2[bank].stat_hits += 1
        self.counters.bump(f"hierarchy.l2_hits.{kind.value}")
        data_lat = self.noc.send(bank_node, core_node, True, cat)
        ready = t_bank + self.params.l2_bank.round_trip_latency + data_lat

        if kind is RequestKind.STORE:
            ready = self._invalidate_sharers(req, line, bank, t_bank, cat, ready)
            if ready is None:
                return  # acks lost (fault injection): the store never performs
            self.dirs[bank].set_owner(line, req.core_id)
            self._purge_llc_sbs(line, except_core=None)
            self._note_line(line, "store_l2_hit", core_id=req.core_id)
            self._finish_store(req, ready, "l2", cat)
            return

        if kind.invisible:
            self._complete_read(req, ready, "l2")
            return

        self.dirs[bank].add_sharer(line, req.core_id)
        self._schedule_visible_fill(req, line, ready, "l2", cat)

    # -------------------------------------------------------- path: memory

    def _memory_path(self, req, line, bank, t_dir, cat):
        kind = req.kind
        bank_node = self._bank_node(bank)
        core_node = self._core_node(req.core_id)
        self.l2[bank].stat_misses += 1
        self.counters.bump(f"hierarchy.l2_misses.{kind.value}")

        # Validation/exposure first checks the requester's LLC-SB.
        if kind in (RequestKind.VALIDATE, RequestKind.EXPOSE) and self.llc_sbs:
            llc_sb = self.llc_sbs[req.core_id]
            if llc_sb.match(req.lq_index, line, req.epoch):
                self.counters.bump("invisispec.llc_sb_hits")
                data_lat = self.noc.send(bank_node, core_node, True, cat)
                ready = t_dir + llc_sb.access_latency + data_lat
                self._fill_l2(bank, line, t_dir, cat)
                self.dirs[bank].add_sharer(line, req.core_id)
                self._purge_llc_sbs(line, except_core=None)
                self._schedule_visible_fill(req, line, ready, "llc_sb", cat)
                return
            self.counters.bump("invisispec.llc_sb_misses")

        mem_req_lat = self.noc.send(bank_node, self._mem_node, False, cat)
        dram_done = self.dram.access(t_dir + mem_req_lat, line)
        mem_data_lat = self.noc.send(self._mem_node, bank_node, True, cat)
        t_back = dram_done + mem_data_lat
        data_lat = self.noc.send(bank_node, core_node, True, cat)
        ready = t_back + data_lat
        self.counters.bump(f"hierarchy.dram.{kind.value}")

        if kind.invisible:
            # No fills anywhere; deposit a copy in the requester's LLC-SB.
            if self.llc_sbs is not None and kind is RequestKind.SPEC_LOAD:
                self.llc_sbs[req.core_id].insert(
                    req.lq_index, line, req.epoch, at_cycle=t_back
                )
            self._complete_read(req, ready, "dram")
            return

        # A visible access that misses in the LLC purges the line from every
        # core's LLC-SB (Section VI-C).
        self._purge_llc_sbs(line, except_core=None)
        self._fill_l2(bank, line, t_back, cat)

        if kind is RequestKind.STORE:
            self.dirs[bank].set_owner(line, req.core_id)
            self._note_line(line, "store_dram", core_id=req.core_id)
            self._finish_store(req, ready, "dram", cat)
            return

        self.dirs[bank].add_sharer(line, req.core_id)
        self._schedule_visible_fill(req, line, ready, "dram", cat)

    # -------------------------------------------------------- path: upgrade

    def _upgrade(self, req, line, slot):
        """Store hit in S: acquire ownership, invalidating other sharers."""
        cat = _CATEGORY_BY_KIND[req.kind]
        bank = self.bank_of(line)
        bank_node = self._bank_node(bank)
        core_node = self._core_node(req.core_id)
        arrive = slot + self.noc.send(core_node, bank_node, False, cat)
        t_bank = self._bank_slot(bank, arrive)
        ack_lat = self.noc.send(bank_node, core_node, False, cat)
        ready = t_bank + ack_lat + 1
        ready = self._invalidate_sharers(req, line, bank, t_bank, cat, ready)
        if ready is None:
            return  # acks lost (fault injection): the upgrade never completes
        self.dirs[bank].set_owner(line, req.core_id)
        entry = self.l1s[req.core_id].lookup(line, touch=False)
        if entry is not None:
            entry.state = apply_l1_event(entry.state, L1Event.UPGRADE)
        self._purge_llc_sbs(line, except_core=None)
        self.counters.bump("hierarchy.upgrades")
        self._note_line(line, "store_upgrade", core_id=req.core_id)
        self._finish_store(req, ready, "upgrade", cat)

    # ----------------------------------------------------------- state moves

    def _invalidate_sharers(self, req, line, bank, t_bank, cat, ready):
        """Send Inv to every other sharer; returns completion including acks.

        Returns ``None`` when an injected ``inv.ack_drop`` fault loses the
        acks: the store can then never perform, which is exactly the lost
        ack deadlock the kernel's detector exists for.  Callers must stop
        the transaction (no completion is scheduled) in that case.
        """
        directory = self.dirs[bank]
        bank_node = self._bank_node(bank)
        others = directory.sharers_other_than(line, req.core_id)
        worst_ack = ready
        for sharer in others:
            deliver_lat = self.noc.send(bank_node, self._core_node(sharer), False, cat)
            deliver_at = t_bank + deliver_lat
            if self.faults is not None and self.faults.fire("inv.drop") is not None:
                # The Inv is lost but its ack is spuriously counted: the
                # directory stops tracking the sharer, which keeps a stale
                # copy while the writer proceeds to M — a silent SWMR /
                # directory-agreement break, detectable only by the
                # sanitizer (unlike inv.ack_drop, which deadlocks visibly).
                self.counters.bump("faults.invs_dropped")
                directory.remove_core(line, sharer)
                continue
            self._deliver_invalidation(sharer, line, deliver_at, cat, "coherence")
            ack_lat = self.noc.send(self._core_node(sharer), bank_node, False, cat)
            worst_ack = max(worst_ack, deliver_at + ack_lat)
            directory.remove_core(line, sharer)
        self.counters.bump("coherence.invalidations_sent", len(others))
        if (
            others
            and self.faults is not None
            and self.faults.fire("inv.ack_drop") is not None
        ):
            self.counters.bump("faults.inv_acks_dropped")
            return None
        return worst_ack

    def _deliver_invalidation(self, core_id, line, at_cycle, cat, reason):
        """Schedule the arrival of an Inv at a core's L1."""

        def deliver():
            if self.monitor is not None:
                self.monitor.on_inv_delivered(core_id, line)
            self.l1s[core_id].invalidate(line)
            core = self._cores[core_id]
            if core is not None:
                core.on_invalidation(line, reason)
            self._note_line(line, f"inv_delivered[{reason}]", core_id=core_id)

        handle = self.kernel.schedule_at(at_cycle, deliver)
        # Register the in-flight window with the sanitizer so the stale copy
        # is not flagged before delivery.  An event pre-cancelled by the
        # kernel.event_drop fault will never fire: skip registering it, so
        # the pending counter cannot leak (the lost Inv then surfaces as the
        # coherence violation it really is).
        if self.monitor is not None and not handle.cancelled:
            self.monitor.on_inv_scheduled(core_id, line)

    def _schedule_visible_fill(self, req, line, ready, level, cat):
        """At ``ready``: install the line in the requester's L1, complete."""

        def finish():
            self._fill_l1(req.core_id, line, cat)
            self._do_complete_read(req, level)

        self.kernel.schedule_at(ready, finish)

    def _fill_l1(self, core_id, line, cat, state=None):
        """Install a line into an L1; state defaults to E (sole copy) or S."""
        l1 = self.l1s[core_id]
        existing = l1.lookup(line, touch=False)
        if existing is not None:
            if state is not None:
                # A store performing into a still-resident copy: a plain
                # writable hit, or an ownership re-assertion if a remote
                # read demoted the copy to S while the store was in flight.
                event = (
                    L1Event.UPGRADE
                    if existing.state is MESIState.SHARED
                    else L1Event.FILL_MODIFIED
                )
                existing.state = apply_l1_event(existing.state, event)
            return
        if state is None:
            bank = self.bank_of(line)
            dentry = self.dirs[bank].entry(line)
            if (
                dentry is not None
                and dentry.owner is not None
                and dentry.owner != core_id
            ):
                # A conflicting write (re)acquired ownership while this
                # read's fill was in flight: installing a Shared copy next
                # to a Modified one would break SWMR.  The data was already
                # delivered to the requester; simply keep no copy.
                self.counters.bump("coherence.fills_dropped_by_writer")
                return
            others = self.dirs[bank].sharers_other_than(line, core_id)
            # Register presence at fill time: an invalidation delivered
            # between the directory's atomic step and this fill must still
            # find the core tracked.  A sole copy is granted E and tracked
            # as the owner, so a later remote read demotes it.
            if others:
                event = L1Event.FILL_SHARED
                self.dirs[bank].add_sharer(line, core_id)
            else:
                event = L1Event.FILL_EXCLUSIVE
                self.dirs[bank].set_owner(line, core_id)
            state = apply_l1_event(MESIState.INVALID, event)
        _entry, victim = l1.insert(line, state)
        if victim is not None:
            self._handle_l1_eviction(core_id, victim, cat)
        self._note_line(line, "l1_fill", core_id=core_id)

    def _handle_l1_eviction(self, core_id, victim, cat):
        vline = victim.line_addr
        vbank = self.bank_of(vline)
        directory = self.dirs[vbank]
        directory.remove_core(vline, core_id)
        if victim.state.dirty:
            self.noc.send(
                self._core_node(core_id), self._bank_node(vbank), True, cat
            )
            entry = directory.entry(vline, create=True)
            entry.wb_pending_until = self.kernel.cycle + self.WRITEBACK_DELAY
            self.counters.bump("coherence.l1_writebacks")
        self.counters.bump("coherence.l1_evictions")
        core = self._cores[core_id]
        if core is not None:
            core.on_l1_eviction(vline)
        self._note_line(vline, "l1_eviction", core_id=core_id)

    def _fill_l2(self, bank, line, at_cycle, cat):
        """Install a line in an inclusive L2 bank, evicting if needed."""
        l2 = self.l2[bank]
        if l2.contains(line):
            return
        _entry, victim = l2.insert(line, MESIState.SHARED)
        if victim is None:
            self._note_line(line, "l2_fill")
            return
        vline = victim.line_addr
        directory = self.dirs[bank]
        dentry = directory.entry(vline)
        if dentry is not None:
            # Inclusive hierarchy: evicting from L2 recalls all L1 copies.
            # Sorted walk: recall-message order is cycle-affecting.
            holders = set(dentry.sharers)
            if dentry.owner is not None:
                holders.add(dentry.owner)
            for core_id in sorted(holders):
                lat = self.noc.send(
                    self._bank_node(bank), self._core_node(core_id), False, cat
                )
                self._deliver_invalidation(
                    core_id, vline, at_cycle + lat, cat, "l2_evict"
                )
            directory.drop(vline)
        # Stale LLC-SB copies of the victim can no longer be trusted.
        self._purge_llc_sbs(vline, except_core=None)
        self.noc.send(self._bank_node(bank), self._mem_node, True, cat)
        self.counters.bump("coherence.l2_evictions")
        self._note_line(vline, "l2_eviction")
        self._note_line(line, "l2_fill")

    def _purge_llc_sbs(self, line, except_core):
        if not self.llc_sbs:
            return
        for core_id, llc_sb in enumerate(self.llc_sbs):
            if except_core is not None and core_id == except_core:
                continue
            llc_sb.invalidate_line(line)

    # ------------------------------------------------------------ completion

    def _complete_read(self, req, ready, level):
        self.kernel.schedule_at(ready, lambda: self._do_complete_read(req, level))

    def _do_complete_read(self, req, level):
        if self.faults is not None and self.faults.fire("mshr.stuck") is not None:
            # The fill is lost and the MSHR entry stays pinned: merged
            # targets never complete and the core hangs on the load.
            self.counters.bump("faults.mshr_stuck")
            return
        data, version = self.image.snapshot(req.addr, req.size)
        result = AccessResult(
            level, data, version, self.kernel.cycle, bounces=req.bounces
        )
        self._release_own_mshr(req)
        if req.on_complete is not None:
            req.on_complete(result)

    def _finish_store(self, req, ready, level, cat):
        line = self.space.line_of(req.addr)
        bank = self.bank_of(line)

        def perform():
            # Between the directory's atomic processing of this GetX and the
            # store performing, a read may have demoted this core and added
            # sharers.  The store logically orders after those reads, so
            # ownership is re-asserted now: any sharer that appeared in the
            # window is invalidated again.
            directory = self.dirs[bank]
            now = self.kernel.cycle
            for sharer in directory.sharers_other_than(line, req.core_id):
                lat = self.noc.send(
                    self._bank_node(bank), self._core_node(sharer), False, cat
                )
                self._deliver_invalidation(sharer, line, now + lat, cat, "coherence")
                directory.remove_core(line, sharer)
                self.counters.bump("coherence.invalidations_sent")
            directory.set_owner(line, req.core_id)
            self.image.write(req.addr, req.size, req.store_value)
            self._fill_l1(req.core_id, line, cat, state=MESIState.MODIFIED)
            self._note_line(line, "store_performed", core_id=req.core_id)
            result = AccessResult(level, None, 0, now)
            self._release_own_mshr(req)
            if req.on_complete is not None:
                req.on_complete(result)

        self.kernel.schedule_at(ready, perform)

    def _release_own_mshr(self, req):
        line = self.space.line_of(req.addr)
        mshr = self.mshrs[req.core_id]
        entry = mshr.lookup(line)
        if entry is not None and entry.allocator_seq == req.seq:
            targets = list(entry.targets)
            mshr.complete(line)
            for target in targets:
                self._do_complete_read(target, "mshr_merge")
            self._drain_mshr_waiters(req.core_id)

    def _drain_mshr_waiters(self, core_id):
        """A freed MSHR lets queued misses proceed (next cycle).

        The whole queue is resubmitted: a resubmitted request may hit the
        cache or merge rather than allocate, so popping exactly one per
        release could strand the rest.  Still-blocked requests simply
        re-queue inside submit().
        """
        waiting = self._mshr_waiting[core_id]
        if not waiting:
            return
        batch = list(waiting)
        waiting.clear()

        def resubmit():
            for req in batch:
                self.submit(req)

        self.kernel.schedule(1, resubmit)

    # ------------------------------------------------------ attacker primitive

    def flush_line(self, line_addr):
        """clflush semantics: evict the line from every cache level.

        The memory image is always architecturally current (stores update
        it when they perform), so a dirty write-back is a no-op here beyond
        the accounting.
        """
        for core_id, l1 in enumerate(self.l1s):
            entry = l1.invalidate(line_addr)
            if entry is not None:
                self.counters.bump("hierarchy.clflush_l1")
                core = self._cores[core_id]
                if core is not None:
                    core.on_l1_eviction(line_addr)
        bank = self.bank_of(line_addr)
        if self.l2[bank].invalidate(line_addr) is not None:
            self.counters.bump("hierarchy.clflush_l2")
        self.dirs[bank].drop(line_addr)

    # ---------------------------------------------------------- debug helpers

    def l1_state(self, core_id, addr):
        entry = self.l1s[core_id].lookup(self.space.line_of(addr), touch=False)
        return entry.state if entry is not None else MESIState.INVALID

    def check_inclusion(self):
        """Inclusive-hierarchy invariant: every L1 line is tracked in L2."""
        from .checker import check_inclusion

        return check_inclusion(self)
