"""Architecture parameters of the simulated machine.

The defaults reproduce Table IV of the InvisiSpec paper (MICRO 2018):

========================  =====================================================
Parameter                 Value
========================  =====================================================
Architecture              1 core (SPEC) or 8 cores (PARSEC) at 2.0 GHz
Core                      8-issue, out-of-order, no SMT, 32 LQ entries, 32 SQ
                          entries, 192 ROB entries, tournament branch
                          predictor, 4096 BTB entries, 16 RAS entries
Private L1-I cache        32 KB, 64 B line, 4-way, 1 cycle round trip
Private L1-D cache        64 KB, 64 B line, 8-way, 1 cycle RT, 3 rd/wr ports
Shared L2 (LLC)           per core: 2 MB bank, 64 B line, 16-way, 8 cycles RT
                          local, 16 cycles RT remote (max)
Network                   4x2 mesh, 128-bit links, 1 cycle per hop
Coherence                 directory-based MESI
DRAM                      50 ns round trip after L2 (100 cycles at 2 GHz)
========================  =====================================================

Every structure in the simulator takes its geometry from these dataclasses,
so experiments can sweep any of them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError


def _positive(name, value):
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def _power_of_two(name, value):
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{name} must be a power of two, got {value!r}")


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache array."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8
    round_trip_latency: int = 1
    ports: int = 3
    replacement: str = "lru"

    def __post_init__(self):
        _positive("size_bytes", self.size_bytes)
        _power_of_two("line_bytes", self.line_bytes)
        _positive("ways", self.ways)
        _positive("round_trip_latency", self.round_trip_latency)
        _positive("ports", self.ports)
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ConfigError(
                "cache size must be divisible by line_bytes * ways: "
                f"{self.size_bytes} / ({self.line_bytes} * {self.ways})"
            )
        if self.replacement not in ("lru", "random", "plru"):
            raise ConfigError(f"unknown replacement policy {self.replacement!r}")

    @property
    def num_lines(self):
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self):
        return self.num_lines // self.ways


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core resources (Table IV, row "Core")."""

    issue_width: int = 8
    rob_entries: int = 192
    load_queue_entries: int = 32
    store_queue_entries: int = 32
    btb_entries: int = 4096
    ras_entries: int = 16
    branch_resolve_latency: int = 2
    int_alu_latency: int = 1
    fp_alu_latency: int = 3
    mshr_entries: int = 16
    write_buffer_entries: int = 16
    interrupt_interval: int = 0  # cycles between timer interrupts; 0 = off
    #: Hardware stride-prefetch degree; 0 disables the prefetcher (the
    #: paper's configuration).  Under InvisiSpec the prefetcher may only be
    #: trained and triggered by *visible* accesses (Section VI-B).
    prefetch_degree: int = 0

    def __post_init__(self):
        for name in (
            "issue_width",
            "rob_entries",
            "load_queue_entries",
            "store_queue_entries",
            "btb_entries",
            "ras_entries",
            "branch_resolve_latency",
            "int_alu_latency",
            "fp_alu_latency",
            "mshr_entries",
            "write_buffer_entries",
        ):
            _positive(name, getattr(self, name))
        if self.interrupt_interval < 0:
            raise ConfigError("interrupt_interval must be >= 0")
        if self.prefetch_degree < 0:
            raise ConfigError("prefetch_degree must be >= 0")


@dataclass(frozen=True)
class TLBParams:
    """Data TLB geometry and page-walk cost."""

    entries: int = 64
    page_bytes: int = 4096
    walk_latency: int = 60

    def __post_init__(self):
        _positive("entries", self.entries)
        _power_of_two("page_bytes", self.page_bytes)
        _positive("walk_latency", self.walk_latency)


@dataclass(frozen=True)
class NetworkParams:
    """Mesh network-on-chip parameters (Table IV, row "Network")."""

    mesh_cols: int = 4
    mesh_rows: int = 2
    link_bits: int = 128
    hop_latency: int = 1
    control_message_bytes: int = 8
    data_message_bytes: int = 72  # 64 B line + 8 B header

    def __post_init__(self):
        _positive("mesh_cols", self.mesh_cols)
        _positive("mesh_rows", self.mesh_rows)
        _positive("link_bits", self.link_bits)
        _positive("hop_latency", self.hop_latency)
        _positive("control_message_bytes", self.control_message_bytes)
        _positive("data_message_bytes", self.data_message_bytes)

    @property
    def num_nodes(self):
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class SystemParams:
    """Full simulated machine: cores, cache hierarchy, NoC, DRAM.

    ``l2_banks`` defaults to the number of cores (one bank per core, per the
    paper).  When running single-core SPEC workloads the paper enables only
    one bank of the shared cache; :func:`for_spec` does the same.
    """

    num_cores: int = 8
    frequency_ghz: float = 2.0
    core: CoreParams = field(default_factory=CoreParams)
    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=32 * 1024, ways=4, round_trip_latency=1, ports=1
        )
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=64 * 1024, ways=8, round_trip_latency=1, ports=3
        )
    )
    l2_bank: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=2 * 1024 * 1024, ways=16, round_trip_latency=8, ports=1
        )
    )
    l2_banks: int = 0  # 0 means "one bank per core"
    tlb: TLBParams = field(default_factory=TLBParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    dram_latency: int = 100  # 50 ns at 2 GHz
    l2_remote_max_latency: int = 16
    #: Model a real L1-I cache with fetch stalls instead of the default
    #: traffic-only instruction-fetch model.
    model_l1i: bool = False

    def __post_init__(self):
        _positive("num_cores", self.num_cores)
        _positive("dram_latency", self.dram_latency)
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency_ghz must be positive")
        if self.l2_banks < 0:
            raise ConfigError("l2_banks must be >= 0")
        if self.num_cores > self.network.num_nodes:
            raise ConfigError(
                f"{self.num_cores} cores do not fit a "
                f"{self.network.mesh_cols}x{self.network.mesh_rows} mesh"
            )
        if self.l1d.line_bytes != self.l2_bank.line_bytes:
            raise ConfigError("L1 and L2 must use the same line size")

    @property
    def num_l2_banks(self):
        return self.l2_banks or self.num_cores

    @property
    def line_bytes(self):
        return self.l1d.line_bytes

    def replace(self, **kwargs) -> "SystemParams":
        """Return a copy of these parameters with fields overridden."""
        return dataclasses.replace(self, **kwargs)

    @classmethod
    def for_spec(cls, **overrides) -> "SystemParams":
        """Single-core configuration used for SPEC runs (one L2 bank)."""
        defaults = dict(num_cores=1, l2_banks=1)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def for_parsec(cls, **overrides) -> "SystemParams":
        """Eight-core configuration used for PARSEC runs."""
        defaults = dict(num_cores=8)
        defaults.update(overrides)
        return cls(**defaults)
