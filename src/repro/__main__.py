"""``python -m repro``: package banner and quick pointers."""

from __future__ import annotations

import sys

from . import __version__
from .configs import ALL_SCHEMES


def main():
    print(f"repro {__version__} — InvisiSpec (MICRO 2018) reproduction")
    print()
    print("Processor configurations:", ", ".join(s.value for s in ALL_SCHEMES))
    print()
    print("Entry points:")
    print("  python -m repro.experiments <figure4|figure5|...|all> [--quick]")
    print("  python examples/quickstart.py")
    print("  python examples/spectre_attack.py")
    print("  pytest tests/")
    print("  pytest benchmarks/ --benchmark-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
