"""Scheme policies: Table V's five processor configurations.

A scheme policy answers, for its core:

* which fence ops the frontend must inject (the Fence-Spectre /
  Fence-Future baselines);
* whether a load about to issue is *safe* or an Unsafe Speculative Load
  (Section V-A1);
* whether a USL has reached its *visibility point* (Section V-B);
* how validations and exposures may overlap (Section V-D).
"""

from __future__ import annotations

from ..configs import Scheme
from ..errors import ConfigError


class SchemePolicy:
    """Base: the conventional, insecure processor."""

    name = "Base"
    inserts_fence_after_branch = False
    inserts_fence_before_load = False
    uses_invisispec = False
    #: IS-Future requires validations to block later val/exp issues.
    validation_blocks_overlap = False

    def load_is_safe(self, core, rob_entry):
        """Safe loads issue normal coherence transactions (State N)."""
        return True

    def visible_now(self, core, lq_entry):
        """Has this USL reached its visibility point?"""
        return True


class FenceSpectrePolicy(SchemePolicy):
    """A fence after every indirect/conditional branch."""

    name = "Fe-Sp"
    inserts_fence_after_branch = True


class FenceFuturePolicy(SchemePolicy):
    """A fence before every load."""

    name = "Fe-Fu"
    inserts_fence_before_load = True


class ISSpectrePolicy(SchemePolicy):
    """InvisiSpec-Spectre: USLs are loads in the shadow of an unresolved
    control-flow instruction; they become visible when all preceding
    branches resolve.  Validations and exposures may all overlap."""

    name = "IS-Sp"
    uses_invisispec = True
    validation_blocks_overlap = False

    def load_is_safe(self, core, rob_entry):
        branch_seq = core.min_unresolved_branch_seq()
        return branch_seq is None or branch_seq > rob_entry.seq

    def visible_now(self, core, lq_entry):
        branch_seq = core.min_unresolved_branch_seq()
        return branch_seq is None or branch_seq > lq_entry.seq


class ISFuturePolicy(SchemePolicy):
    """InvisiSpec-Future: any speculative load that can still be squashed
    by an earlier instruction is a USL.  It becomes visible when it is
    non-speculative (ROB head) or speculative non-squashable: every older
    instruction can no longer squash it (Section V-A1 and the Section VIII
    conditions (i)-(v)), with interrupts delayed for the duration."""

    name = "IS-Fu"
    uses_invisispec = True
    validation_blocks_overlap = True

    def load_is_safe(self, core, rob_entry):
        head = core.rob.head()
        if head is not None and head.seq == rob_entry.seq:
            return True
        return self._non_squashable(core, rob_entry.seq)

    def visible_now(self, core, lq_entry):
        head = core.rob.head()
        if head is not None and head.seq == lq_entry.seq:
            return True
        if self._non_squashable(core, lq_entry.seq):
            # Initiating a pre-head validation/exposure requires the
            # interrupt-delay window (Section VI-D); refused if an interrupt
            # is already pending (anti-starvation).
            return core.request_interrupt_protection(lq_entry.seq)
        return False

    @staticmethod
    def _non_squashable(core, seq):
        for probe in (
            core.min_unresolved_branch_seq,
            core.min_exceptable_seq,
            core.min_uncommitted_store_seq,
            core.min_unvalidated_load_seq,
            core.min_incomplete_fence_seq,
        ):
            blocking = probe()
            if blocking is not None and blocking < seq:
                return False
        return True


class SelectivePolicy(ISFuturePolicy):
    """Analysis-guided selective protection (repro.specflow).

    Only loads whose static PC the speculative-taint analysis flagged as a
    possible transmitter (``TRANSMIT``) or could not prove harmless
    (``UNKNOWN``) take the USL/invisible path; for those the policy applies
    full IS-Future semantics, so the scheme defends the Futuristic attack
    model on every protected PC.  Loads the analysis proved ``SAFE`` —
    their address can never carry transiently-tainted data — issue down the
    conventional fast path, which is what buys back IS-Future's overhead.
    """

    name = "IS-Sel"

    def __init__(self, protected_pcs=frozenset()):
        self.protected_pcs = frozenset(protected_pcs)

    def load_is_safe(self, core, rob_entry):
        if rob_entry.op.pc not in self.protected_pcs:
            return True
        return super().load_is_safe(core, rob_entry)


_POLICIES = {
    Scheme.BASE: SchemePolicy,
    Scheme.FENCE_SPECTRE: FenceSpectrePolicy,
    Scheme.FENCE_FUTURE: FenceFuturePolicy,
    Scheme.IS_SPECTRE: ISSpectrePolicy,
    Scheme.IS_FUTURE: ISFuturePolicy,
}


def make_scheme_policy(scheme, config=None):
    """Instantiate the policy for ``scheme``.

    ``config`` (a :class:`~repro.configs.ProcessorConfig`) is only needed
    by :attr:`Scheme.SELECTIVE`, whose protected-PC set lives in the
    config; the classic five schemes ignore it.
    """
    if scheme is Scheme.SELECTIVE:
        protected = (
            config.protected_pcs if config is not None else frozenset()
        )
        return SelectivePolicy(protected)
    try:
        return _POLICIES[scheme]()
    except KeyError:
        raise ConfigError(f"unknown scheme {scheme!r}")
