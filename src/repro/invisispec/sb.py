"""The L1-level Speculative Buffer (Section VI-A).

The SB has as many entries as the load queue with a one-to-one mapping:
LQ virtual index *i* owns SB slot ``i % capacity``.  An entry stores the
data of one cache line plus an Address Mask marking which bytes the USL
actually read (those are the bytes a validation later compares).  The SB
stores no address and is invisible to coherence: incoming invalidations
never touch it.

Security invariants enforced here (Section VII):

* A squashed USL's entry is reset (Valid cleared) before the slot can be
  reused, so a later load can never consume data left by a squashed
  transmitter.
* Copying between entries (the Section V-E reuse path) is only permitted
  from an *older* LQ index to a *newer* one; the reverse direction — a
  receiver reusing a younger transmitter's data — raises.
"""

from __future__ import annotations

from ..errors import SimulationError


class SBEntry:
    """One speculative-buffer line slot."""

    __slots__ = (
        "lq_index",
        "valid",
        "line_addr",
        "data",
        "version",
        "address_mask",
        "fill_pending",
        "from_store_mask",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.lq_index = None
        self.valid = False
        self.line_addr = None
        self.data = None  # tuple of byte values actually read
        self.version = 0
        self.address_mask = 0
        self.fill_pending = False
        self.from_store_mask = 0  # bytes forwarded from an older store

    def __repr__(self):
        return (
            f"SBEntry(lq={self.lq_index}, valid={self.valid}, "
            f"line=0x{self.line_addr:x})" if self.valid else "SBEntry(invalid)"
        )


class SpeculativeBuffer:
    """Per-core SB, slot-mapped onto the LQ."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._slots = [SBEntry() for _ in range(capacity)]
        self.stat_fills = 0
        self.stat_copies = 0
        self.stat_hits = 0

    def entry(self, lq_index):
        return self._slots[lq_index % self.capacity]

    def allocate(self, lq_index):
        """Claim the slot for a newly dispatched load."""
        slot = self._slots[lq_index % self.capacity]
        slot.reset()
        slot.lq_index = lq_index
        return slot

    def fill(self, lq_index, line_addr, line_data, version, address_mask):
        """Deposit a full cache line returned by a Spec-GetS.

        ``line_data`` is the whole line (tuple of line-size byte values).
        Bytes covered by ``from_store_mask`` (already forwarded from an
        older store) are not overwritten (Section VI-A2).
        """
        slot = self._slots[lq_index % self.capacity]
        if slot.lq_index != lq_index:
            # The load was squashed and the slot reassigned: drop the fill.
            return None
        if slot.from_store_mask and slot.data is not None:
            merged = list(line_data)
            for i, byte in enumerate(slot.data):
                if slot.from_store_mask & (1 << i):
                    merged[i] = byte
            line_data = tuple(merged)
        slot.valid = True
        slot.line_addr = line_addr
        slot.data = tuple(line_data)
        slot.version = version
        slot.address_mask |= address_mask
        slot.fill_pending = False
        self.stat_fills += 1
        return slot

    def forward_from_store(self, lq_index, line_addr, offset, value_bytes):
        """Record store-forwarded bytes ahead of the Spec-GetS response."""
        slot = self._slots[lq_index % self.capacity]
        line = list(slot.data) if slot.data is not None else [0] * 64
        mask = 0
        for i, byte in enumerate(value_bytes):
            if offset + i < len(line):
                line[offset + i] = byte & 0xFF
                mask |= 1 << (offset + i)
        slot.lq_index = lq_index
        slot.line_addr = line_addr
        slot.data = tuple(line)
        slot.address_mask |= mask
        slot.from_store_mask |= mask
        slot.valid = True
        return slot

    def copy(self, src_lq_index, dst_lq_index, address_mask):
        """Section V-E: a later USL reuses the line an earlier USL fetched."""
        if src_lq_index >= dst_lq_index:
            raise SimulationError(
                "SB copy from a younger entry is forbidden (Section VII): "
                f"{src_lq_index} -> {dst_lq_index}"
            )
        src = self._slots[src_lq_index % self.capacity]
        dst = self._slots[dst_lq_index % self.capacity]
        if not src.valid or src.lq_index != src_lq_index:
            raise SimulationError("SB copy from an invalid source entry")
        dst.lq_index = dst_lq_index
        dst.valid = True
        dst.line_addr = src.line_addr
        dst.data = src.data
        dst.version = src.version
        dst.address_mask = address_mask
        dst.fill_pending = False
        self.stat_copies += 1
        return dst

    def invalidate(self, lq_index):
        """Reset the slot when its load is squashed or retires."""
        slot = self._slots[lq_index % self.capacity]
        if slot.lq_index == lq_index:
            slot.reset()

    def read_bytes(self, lq_index, offset, size):
        """The bytes the USL consumed (for validation comparison)."""
        slot = self._slots[lq_index % self.capacity]
        if not slot.valid or slot.lq_index != lq_index or slot.data is None:
            raise SimulationError(f"reading invalid SB entry {lq_index}")
        return slot.data[offset:offset + size]

    def valid_entries(self):
        return [s for s in self._slots if s.valid]
