"""Per-core LLC Speculative Buffer (Sections V-F and VI-C).

A circular buffer next to the LLC with one entry per LQ slot.  When a USL's
Spec-GetS misses in the LLC and reads main memory, a copy of the line is
deposited here so the later validation/exposure of the same load avoids a
second DRAM access.

Epoch IDs make the buffer robust to squash/reissue races: the core bumps
its epoch on every squash, every message carries the issuing epoch, and an
entry is never overwritten by a request from an *older* epoch nor matched
by a request with a different epoch.  A USL is also never allowed to *read*
from the LLC-SB — only validations/exposures are — so squashed loads leave
no reusable footprint (Section VII).
"""

from __future__ import annotations


class LLCSBEntry:
    __slots__ = ("valid", "line_addr", "epoch")

    def __init__(self):
        self.valid = False
        self.line_addr = None
        self.epoch = -1


class LLCSpeculativeBuffer:
    """One core's LLC-SB: LQ-indexed circular buffer of (line, epoch)."""

    def __init__(self, capacity, access_latency=8):
        self.capacity = capacity
        self.access_latency = access_latency
        self._slots = [LLCSBEntry() for _ in range(capacity)]
        self.stat_inserts = 0
        self.stat_stale_drops = 0
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_line_invalidations = 0

    def _slot(self, lq_index):
        return self._slots[lq_index % self.capacity]

    def insert(self, lq_index, line_addr, epoch, at_cycle=0):
        """Deposit a line fetched from memory by a Spec-GetS.

        Dropped if the slot already holds data from a *newer* epoch: the
        inserting request is stale (it was issued before a squash that has
        since recycled this LQ slot).
        """
        slot = self._slot(lq_index)
        if slot.valid and slot.epoch > epoch:
            self.stat_stale_drops += 1
            return False
        slot.valid = True
        slot.line_addr = line_addr
        slot.epoch = epoch
        self.stat_inserts += 1
        return True

    def match(self, lq_index, line_addr, epoch):
        """Validation/exposure probe: address and epoch must both match."""
        slot = self._slot(lq_index)
        if slot.valid and slot.line_addr == line_addr and slot.epoch == epoch:
            self.stat_hits += 1
            # The entry is consumed: the line is moving into the LLC and the
            # hierarchy purges it from every LLC-SB right after this.
            return True
        self.stat_misses += 1
        return False

    def invalidate_line(self, line_addr):
        """Purge any entry holding ``line_addr`` (another core touched it,
        or the line was installed in / evicted from the LLC)."""
        for slot in self._slots:
            if slot.valid and slot.line_addr == line_addr:
                slot.valid = False
                self.stat_line_invalidations += 1

    def valid_lines(self):
        return [s.line_addr for s in self._slots if s.valid]
