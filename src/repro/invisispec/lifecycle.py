"""The USL visibility lifecycle as a checkable transition table.

A load-queue entry's ``vstate`` walks a small state machine (Section
VI-A1 plus this implementation's deferred-TLB state):

```
  None ──classify──> E | V | N | D
  D    ──issues at visibility point──> N
  E    ──exposure completes──> C
  V    ──validation completes──> C
```

Squash recycles the whole LQ entry (a fresh object), so there is no
backward edge.  The table is shared by the live pipeline (every
``vstate`` assignment goes through :func:`advance_vstate`) and by the
offline model checker (:mod:`repro.staticcheck.model`), whose abstract
speculative transactions step through exactly these states.
"""

from __future__ import annotations

from ..cpu.lsq import (
    STATE_COMPLETE,
    STATE_DEFERRED,
    STATE_EXPOSURE,
    STATE_NORMAL,
    STATE_VALIDATION,
)
from ..errors import ProtocolError

#: Allowed (old, new) vstate edges; ``None`` is the unclassified state.
VSTATE_TRANSITIONS = frozenset(
    {
        (None, STATE_EXPOSURE),
        (None, STATE_VALIDATION),
        (None, STATE_NORMAL),
        (None, STATE_DEFERRED),
        (STATE_DEFERRED, STATE_NORMAL),
        (STATE_EXPOSURE, STATE_COMPLETE),
        (STATE_VALIDATION, STATE_COMPLETE),
    }
)

#: vstates in which the USL has not yet reached its visibility point:
#: its data lives only in the SB and no observer-visible state may have
#: been touched on its behalf.
PRE_VISIBILITY_STATES = frozenset({STATE_EXPOSURE, STATE_VALIDATION})


def advance_vstate(lq_entry, new_state):
    """Move ``lq_entry.vstate`` along a table edge; reject anything else."""
    old = lq_entry.vstate
    if (old, new_state) not in VSTATE_TRANSITIONS:
        raise ProtocolError(
            f"illegal USL vstate transition {old!r} -> {new_state!r} "
            f"(lq index {lq_entry.index})"
        )
    lq_entry.vstate = new_state
