"""The visibility engine: validations and exposures.

Implements Sections V-C and V-D:

* Validations/exposures are initiated in program order (a sufficient
  condition for consistency, proven in the paper's appendix).
* Under IS-Future, an issued validation blocks all later validations and
  exposures until it completes; exposures overlap freely.  Under
  IS-Spectre everything overlaps.
* A validation compares the bytes the USL consumed (in the SB) against the
  line's current value; a mismatch squashes the USL and everything younger.
* Early squash (Section V-C2): a USL needing validation is squashed as soon
  as its line is invalidated; and when a validation brings a line in, any
  later same-line USL whose SB bytes no longer match is squashed too.
"""

from __future__ import annotations

from ..coherence.requests import MemRequest, RequestKind
from ..stats.histogram import LatencyHistogram
from .lifecycle import advance_vstate
from ..cpu.lsq import (
    STATE_COMPLETE,
    STATE_DEFERRED,
    STATE_EXPOSURE,
    STATE_NORMAL,
    STATE_VALIDATION,
)


class VisibilityEngine:
    """Per-core engine issuing validations/exposures for USLs."""

    def __init__(self, core):
        self.core = core
        self.counters = core.counters
        #: Service-latency distribution of validations — the evidence for
        #: the paper's "validation stalls are negligible" claim.
        self.validation_latency = LatencyHistogram()

    # ------------------------------------------------------------ issue scan

    def tick(self):
        """Issue eligible validations/exposures, oldest first."""
        core = self.core
        for entry in core.lq.entries():
            if not entry.valid:
                continue
            state = entry.vstate
            if state is None:
                # A load that has not even resolved yet may still become a
                # USL; issuing past it would break program-order initiation.
                return
            if state in (STATE_COMPLETE, STATE_NORMAL, STATE_DEFERRED):
                continue
            if entry.visibility_issued:
                if entry.validation_inflight and core.policy.validation_blocks_overlap:
                    return  # IS-Future: nothing may pass an in-flight validation
                continue
            # Not yet issued: must wait for the initial Spec-GetS response,
            # and for the visibility point; initiation is in program order,
            # so the first blocked entry stops the scan.
            if not entry.performed:
                return
            if not core.policy.visible_now(core, entry):
                return
            self._issue(entry)
            if entry.vstate == STATE_VALIDATION and core.policy.validation_blocks_overlap:
                return

    def _issue(self, entry):
        core = self.core
        is_validation = entry.vstate == STATE_VALIDATION
        kind = RequestKind.VALIDATE if is_validation else RequestKind.EXPOSE
        entry.visibility_issued = True
        entry.validation_inflight = is_validation
        entry.visibility_issue_cycle = core.kernel.cycle
        # Apply the deferred D-TLB state update (Section VI-E3), and train
        # the hardware prefetcher now that the access is visible (VI-B).
        core.tlb.touch(core.space.page_of(entry.addr))
        core._train_prefetcher(entry.rob.op.pc, entry.addr, lq_entry=entry)
        self.counters.bump(
            "invisispec.validations" if is_validation else "invisispec.exposures"
        )
        if core.tracelog is not None:
            core.tracelog.record(
                core.kernel.cycle, core.core_id,
                "validate" if is_validation else "expose",
                f"seq={entry.seq} addr=0x{entry.addr:x}",
            )
        request = MemRequest(
            core_id=core.core_id,
            addr=entry.addr,
            size=entry.size,
            kind=kind,
            seq=entry.seq,
            lq_index=entry.index,
            epoch=entry.epoch,
            on_complete=lambda result: self._on_complete(entry, result, is_validation),
        )
        core.hierarchy.submit(request)

    # ------------------------------------------------------------ completion

    def _on_complete(self, entry, result, is_validation):
        core = self.core
        # The LQ entry object is unique to one dynamic load: validity plus
        # the ROB squash flag fully identify a stale completion.
        if not entry.valid or entry.rob.squashed:
            # The load was squashed while the transaction was in flight; the
            # line still landed in the caches, which is harmless under both
            # attack models (Section VI-A2).
            return
        if is_validation:
            if entry.visibility_issue_cycle is not None:
                self.validation_latency.record(
                    core.kernel.cycle - entry.visibility_issue_cycle
                )
            self.counters.bump(f"invisispec.validation_level.{result.level}")
            if result.level == "l1":
                self.counters.bump("invisispec.validations_l1_hit")
            else:
                self.counters.bump("invisispec.validations_l1_miss")
            self._finish_validation(entry, result)
        else:
            entry.validation_inflight = False
            entry.visibility_done = True
            advance_vstate(entry, STATE_COMPLETE)
            self.counters.bump(f"invisispec.exposure_level.{result.level}")

    def _finish_validation(self, entry, result):
        core = self.core
        sb_entry = core.sb.entry(entry.index)
        expected = None
        if sb_entry.valid and sb_entry.lq_index == entry.index:
            offset = core.space.offset_in_line(entry.addr)
            expected = sb_entry.data[offset:offset + entry.size]
        if expected is not None and tuple(result.data) == tuple(expected):
            entry.validation_inflight = False
            entry.visibility_done = True
            advance_vstate(entry, STATE_COMPLETE)
            self._early_squash_same_line(entry)
            return
        self.counters.bump("invisispec.validation_failures")
        core.squash_load(entry, reason="validation_fail")

    def _early_squash_same_line(self, entry):
        """Section V-C2, second case: the validated line exposes staleness
        in *later* same-line USLs still awaiting validation."""
        core = self.core
        if not core.config.early_squash:
            return
        for other in core.lq.entries():
            if other.index <= entry.index or not other.valid:
                continue
            if (
                other.line_addr == entry.line_addr
                and other.performed
                and other.vstate == STATE_VALIDATION
                and not other.visibility_done
            ):
                other_sb = core.sb.entry(other.index)
                if not other_sb.valid or other_sb.lq_index != other.index:
                    continue
                offset = core.space.offset_in_line(other.addr)
                used = other_sb.data[offset:offset + other.size]
                if not core.image.matches(other.addr, other.size, used):
                    self.counters.bump("invisispec.early_squash_sibling")
                    core.squash_load(other, reason="consistency")
                    return

    # ------------------------------------------------------- invalidation hook

    def on_invalidation(self, line_addr):
        """Section V-C2, first case: an invalidation hits a line whose USL
        still needs validation — squash it now, the validation would fail."""
        core = self.core
        if not core.config.early_squash:
            return
        for entry in core.lq.entries():
            if (
                entry.valid
                and entry.performed
                and entry.line_addr == line_addr
                and entry.vstate == STATE_VALIDATION
                and not entry.visibility_done
                and not entry.rob.is_wrong_path
            ):
                self.counters.bump("invisispec.early_squash_invalidation")
                core.squash_load(entry, reason="consistency")
                return

    # ----------------------------------------------------------- USL classify

    def classify(self, lq_entry):
        """E or V per the consistency model (Section V-C)."""
        needs_validation = self.core.consistency.usl_needs_validation(
            self.core, lq_entry, self.core.config.val_to_exp_optimization
        )
        return STATE_VALIDATION if needs_validation else STATE_EXPOSURE
