"""InvisiSpec: invisible speculative loads in the data cache hierarchy.

* :mod:`sb` — the per-core L1-level Speculative Buffer (Section VI-A).
* :mod:`llc_sb` — the per-core LLC Speculative Buffer with epoch IDs
  (Sections V-F and VI-C).
* :mod:`policy` — the scheme policies of Table V: which loads are Unsafe
  Speculative Loads, and when they reach their visibility point (IS-Spectre
  vs IS-Future), plus the fence-insertion baselines.
* :mod:`valexp` — the visibility engine: issues validations/exposures in
  program order with the overlap rules of Section V-D, performs the
  value-based comparison, and implements the early-squash optimizations of
  Section V-C2.
"""

from .lifecycle import PRE_VISIBILITY_STATES, VSTATE_TRANSITIONS, advance_vstate
from .llc_sb import LLCSpeculativeBuffer
from .policy import make_scheme_policy
from .sb import SBEntry, SpeculativeBuffer
from .valexp import VisibilityEngine

__all__ = [
    "LLCSpeculativeBuffer",
    "make_scheme_policy",
    "PRE_VISIBILITY_STATES",
    "SBEntry",
    "SpeculativeBuffer",
    "VisibilityEngine",
    "VSTATE_TRANSITIONS",
    "advance_vstate",
]
