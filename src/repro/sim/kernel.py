"""Simulation kernel: drives cores and the event queue cycle by cycle.

The kernel owns the global clock.  Each cycle it first fires the events due
at that cycle (memory responses, invalidation deliveries, ...), then ticks
every registered component (cores).  When every component reports itself
idle-but-waiting, the kernel fast-forwards the clock to the next pending
event instead of spinning, which is what makes a pure-Python cycle-level
model usable.

Reliability hooks
-----------------

Two optional hooks support the :mod:`repro.reliability` layer:

* ``kernel.watchdog`` — a callable invoked with the current cycle roughly
  every :data:`SimKernel.WATCHDOG_PERIOD` cycles of simulated time; it may
  raise (typically :class:`~repro.errors.SimTimeoutError`) to abort a run
  that exceeded a wall-clock budget.
* ``kernel.heartbeat`` — a callable invoked with the current cycle on the
  same period, *before* the watchdog.  It must be a pure observer (never
  raise, never touch simulated state); the parallel sweep supervisor uses
  it to stamp worker liveness, so a worker that stops making simulated
  progress stops heartbeating and gets hard-killed by its supervisor.
* ``kernel.faults`` — a :class:`~repro.reliability.faults.FaultInjector`;
  when set, each ``schedule``/``schedule_at`` call consults the
  ``kernel.event_drop`` fault site, and a triggered fault silently loses
  the event (the returned handle is pre-cancelled), which is how "message
  never arrived" failures reach the deadlock detector.
"""

from __future__ import annotations

from ..errors import DeadlockError, SimTimeoutError
from .events import EventQueue


class SimKernel:
    """Global clock + event queue + tickable components."""

    #: Cycles a component may report "waiting" with an empty event queue
    #: before the kernel declares deadlock.
    DEADLOCK_GRACE = 4

    #: Simulated cycles between watchdog invocations.
    WATCHDOG_PERIOD = 4096

    def __init__(self):
        self.cycle = 0
        self.events = EventQueue()
        self._components = []
        self.watchdog = None
        self.heartbeat = None
        self.faults = None
        #: Optional runtime sanitizer (:mod:`repro.sanitizer`); receives
        #: ``on_cycle`` after each cycle's events fire and ``on_quiesce``
        #: right before a successful run() returns.
        self.monitor = None
        # Last cycle whose events have already fired this iteration.  A
        # schedule for that cycle or earlier (e.g. schedule_at with a stale
        # timestamp from the tick phase) clamps to the next cycle instead of
        # planting an unfireable past event in the queue.
        self._fired_through = -1

    def register(self, component):
        """Register an object with ``tick() -> str`` called every cycle.

        ``tick`` must return one of:

        * ``"active"``  — did work this cycle; keep ticking.
        * ``"waiting"`` — blocked on a pending event; may be fast-forwarded.
        * ``"done"``    — finished; no longer needs ticking.
        """
        self._components.append(component)

    def _schedule_event(self, cycle, callback):
        cycle = max(cycle, self._fired_through + 1)
        if self.faults is not None:
            action = self.faults.fire("kernel.event_drop", cycle=self.cycle)
            if action is not None:
                # The event is lost: return a handle that will never fire so
                # callers can still hold/cancel it.
                event = self.events.schedule(cycle, callback)
                event.cancel()
                return event
        return self.events.schedule(cycle, callback)

    def schedule(self, delay, callback):
        """Run ``callback()`` ``delay`` cycles from now (delay >= 0)."""
        return self._schedule_event(self.cycle + max(0, delay), callback)

    def schedule_at(self, cycle, callback):
        """Run ``callback()`` at an absolute cycle >= now."""
        return self._schedule_event(max(cycle, self.cycle), callback)

    def run(self, max_cycles=None):
        """Run until every component reports ``done``.

        Returns the final cycle count.  Raises :class:`DeadlockError` if no
        component can make progress and no event is pending, or
        :class:`SimTimeoutError` if ``max_cycles`` elapses first.
        """
        stall_cycles = 0
        next_watchdog = (
            self.cycle + self.WATCHDOG_PERIOD
            if self.watchdog is not None or self.heartbeat is not None
            else None
        )
        while True:
            if next_watchdog is not None and self.cycle >= next_watchdog:
                # Heartbeat first: a tripping watchdog must not suppress
                # the liveness pulse its supervisor is waiting on.
                if self.heartbeat is not None:
                    self.heartbeat(self.cycle)
                if self.watchdog is not None:
                    self.watchdog(self.cycle)
                next_watchdog = self.cycle + self.WATCHDOG_PERIOD

            self.events.run_at(self.cycle)
            self._fired_through = self.cycle
            if self.monitor is not None:
                self.monitor.on_cycle(self.cycle)

            any_active = False
            all_done = True
            for component in self._components:
                state = component.tick()
                if state == "active":
                    any_active = True
                    all_done = False
                elif state == "waiting":
                    all_done = False

            if all_done:
                # Drain straggler events (delayed invalidation deliveries,
                # exposure completions, attack probe transactions) before
                # declaring the run over.
                next_event = self.events.next_cycle()
                if next_event is None:
                    if self.monitor is not None:
                        self.monitor.on_quiesce(self.cycle)
                    return self.cycle
                self.cycle = max(next_event, self.cycle + 1)
                continue

            if max_cycles is not None and self.cycle >= max_cycles:
                raise SimTimeoutError(self.cycle, "max_cycles exceeded")

            next_event = self.events.next_cycle()
            if any_active:
                stall_cycles = 0
                self.cycle += 1
            elif next_event is not None:
                stall_cycles = 0
                self.cycle = max(next_event, self.cycle + 1)
            else:
                stall_cycles += 1
                if stall_cycles > self.DEADLOCK_GRACE:
                    names = [getattr(c, "name", repr(c)) for c in self._components]
                    raise DeadlockError(self.cycle, f"components stuck: {names}")
                self.cycle += 1
