"""Simulation kernel: drives cores and the event queue cycle by cycle.

The kernel owns the global clock.  Each cycle it first fires the events due
at that cycle (memory responses, invalidation deliveries, ...), then ticks
every registered component (cores).  When every component reports itself
idle-but-waiting, the kernel fast-forwards the clock to the next pending
event instead of spinning, which is what makes a pure-Python cycle-level
model usable.
"""

from __future__ import annotations

from ..errors import DeadlockError
from .events import EventQueue


class SimKernel:
    """Global clock + event queue + tickable components."""

    #: Cycles a component may report "waiting" with an empty event queue
    #: before the kernel declares deadlock.
    DEADLOCK_GRACE = 4

    def __init__(self):
        self.cycle = 0
        self.events = EventQueue()
        self._components = []

    def register(self, component):
        """Register an object with ``tick() -> str`` called every cycle.

        ``tick`` must return one of:

        * ``"active"``  — did work this cycle; keep ticking.
        * ``"waiting"`` — blocked on a pending event; may be fast-forwarded.
        * ``"done"``    — finished; no longer needs ticking.
        """
        self._components.append(component)

    def schedule(self, delay, callback):
        """Run ``callback()`` ``delay`` cycles from now (delay >= 0)."""
        return self.events.schedule(self.cycle + max(0, delay), callback)

    def schedule_at(self, cycle, callback):
        """Run ``callback()`` at an absolute cycle >= now."""
        return self.events.schedule(max(cycle, self.cycle), callback)

    def run(self, max_cycles=None):
        """Run until every component reports ``done``.

        Returns the final cycle count.  Raises :class:`DeadlockError` if no
        component can make progress and no event is pending, or if
        ``max_cycles`` elapses first.
        """
        stall_cycles = 0
        while True:
            self.events.run_at(self.cycle)

            any_active = False
            all_done = True
            for component in self._components:
                state = component.tick()
                if state == "active":
                    any_active = True
                    all_done = False
                elif state == "waiting":
                    all_done = False

            if all_done:
                # Drain straggler events (delayed invalidation deliveries,
                # exposure completions, attack probe transactions) before
                # declaring the run over.
                next_event = self.events.next_cycle()
                if next_event is None:
                    return self.cycle
                self.cycle = max(next_event, self.cycle + 1)
                continue

            if max_cycles is not None and self.cycle >= max_cycles:
                raise DeadlockError(self.cycle, "max_cycles exceeded")

            next_event = self.events.next_cycle()
            if any_active:
                stall_cycles = 0
                self.cycle += 1
            elif next_event is not None:
                stall_cycles = 0
                self.cycle = max(next_event, self.cycle + 1)
            else:
                stall_cycles += 1
                if stall_cycles > self.DEADLOCK_GRACE:
                    names = [getattr(c, "name", repr(c)) for c in self._components]
                    raise DeadlockError(self.cycle, f"components stuck: {names}")
                self.cycle += 1
