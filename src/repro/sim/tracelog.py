"""Pipeline event logging for debugging and inspection.

A :class:`TraceLog` is a bounded ring buffer of (cycle, core, event, detail)
tuples.  It is disabled by default (zero overhead beyond one attribute
check); attach one to a core with ``core.tracelog = TraceLog()`` or build
the system with ``System(..., tracelog=TraceLog())`` to capture every
core's dispatch/issue/complete/retire/squash and InvisiSpec
validation/exposure events.

Typical use::

    log = TraceLog(capacity=10_000)
    system = System(..., tracelog=log)
    system.run()
    for line in log.format(kinds={"squash", "validate"}):
        print(line)
"""

from __future__ import annotations

from collections import Counter, deque


class TraceLog:
    """Bounded, filterable event log."""

    def __init__(self, capacity=100_000, kinds=None):
        self.capacity = capacity
        #: Restrict recording to these event kinds (None = everything).
        self.kinds = set(kinds) if kinds else None
        self._events = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, cycle, core_id, kind, detail=""):
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append((cycle, core_id, kind, detail))

    def __len__(self):
        return len(self._events)

    def events(self, kinds=None, core_id=None):
        """Iterate recorded events, optionally filtered."""
        for event in self._events:
            if kinds is not None and event[2] not in kinds:
                continue
            if core_id is not None and event[1] != core_id:
                continue
            yield event

    def counts(self):
        """Event-kind histogram."""
        return Counter(event[2] for event in self._events)

    def format(self, kinds=None, core_id=None, limit=None):
        """Human-readable lines, oldest first."""
        lines = []
        for cycle, core, kind, detail in self.events(kinds, core_id):
            lines.append(f"[{cycle:>8}] core{core} {kind:<10} {detail}")
            if limit is not None and len(lines) >= limit:
                break
        return lines

    def clear(self):
        self._events.clear()
        self.dropped = 0
