"""Simulation kernel: the cycle clock and the deterministic event queue."""

from .events import Event, EventQueue
from .kernel import SimKernel
from .tracelog import TraceLog

__all__ = ["Event", "EventQueue", "SimKernel", "TraceLog"]
