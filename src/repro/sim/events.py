"""Deterministic discrete-event queue.

Events are ordered by (cycle, sequence number): two events scheduled for the
same cycle fire in the order they were scheduled, which keeps simulations
bit-for-bit reproducible regardless of heap tie-breaking.
"""

from __future__ import annotations

import heapq

from ..errors import SimulationError


class Event:
    """A callback to run at an absolute cycle."""

    __slots__ = ("cycle", "seq", "callback", "cancelled")

    def __init__(self, cycle, seq, callback):
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing; cheap (lazy deletion)."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(cycle={self.cycle}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` keyed by (cycle, insertion order)."""

    def __init__(self):
        self._heap = []
        self._next_seq = 0

    def __len__(self):
        return len(self._heap)

    def schedule(self, cycle, callback) -> Event:
        """Schedule ``callback()`` to run at ``cycle``; returns the Event."""
        event = Event(cycle, self._next_seq, callback)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        return event

    def next_cycle(self):
        """Cycle of the earliest pending event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].cycle

    def _drop_cancelled(self):
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def run_until(self, cycle):
        """Fire every pending event with ``event.cycle <= cycle``, in order."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            if head.cycle > cycle:
                break
            heapq.heappop(heap)
            head.callback()

    def run_at(self, cycle):
        """Fire every pending event scheduled exactly at ``cycle``.

        Raises :class:`SimulationError` if an earlier event is still pending,
        which would mean the kernel skipped time.
        """
        self._drop_cancelled()
        if self._heap and self._heap[0].cycle < cycle:
            raise SimulationError(
                f"event at cycle {self._heap[0].cycle} missed (now {cycle})"
            )
        self.run_until(cycle)
