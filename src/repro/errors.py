"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at the API boundary while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architecture or processor configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ProtocolError(SimulationError):
    """A cache coherence transaction violated the MESI protocol."""


class ConsistencyError(SimulationError):
    """A memory consistency invariant was violated by the model itself."""


class WorkloadError(ReproError):
    """A workload profile or trace request is malformed."""


class TransientError(ReproError):
    """Marker mixin: the failure is plausibly run-specific.

    Errors that also derive from this class (budget exhaustion, injected
    perturbations) are worth retrying with a bumped seed / grown budget;
    errors that do not (a genuine protocol violation, a bad config) are
    permanent and retrying them is wasted work.  The reliability engine's
    default :class:`~repro.reliability.RetryPolicy` keys off this marker.
    """


class DeadlockError(SimulationError):
    """The simulation cannot make forward progress."""

    def __init__(self, cycle, detail):
        super().__init__(f"deadlock detected at cycle {cycle}: {detail}")
        self.cycle = cycle
        self.detail = detail


class SimTimeoutError(DeadlockError, TransientError):
    """A cycle or wall-clock budget elapsed before the run finished.

    Distinct from a true :class:`DeadlockError`: the simulator was still
    making forward progress, it just ran out of budget.  Subclasses
    ``DeadlockError`` so existing ``except DeadlockError`` call sites keep
    working, and :class:`TransientError` so the reliability engine retries
    it with a larger budget.
    """

    def __init__(self, cycle, detail):
        # Skip DeadlockError.__init__'s "deadlock detected" phrasing.
        SimulationError.__init__(
            self, f"simulation budget exhausted at cycle {cycle}: {detail}"
        )
        self.cycle = cycle
        self.detail = detail


class FaultInjectionError(SimulationError, TransientError):
    """An injected fault made the run unusable (reliability testing)."""
