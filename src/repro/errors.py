"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at the API boundary while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architecture or processor configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ProtocolError(SimulationError):
    """A cache coherence transaction violated the MESI protocol."""


class ConsistencyError(SimulationError):
    """A memory consistency invariant was violated by the model itself."""


class WorkloadError(ReproError):
    """A workload profile or trace request is malformed."""


class TransientError(ReproError):
    """Marker mixin: the failure is plausibly run-specific.

    Errors that also derive from this class (budget exhaustion, injected
    perturbations) are worth retrying with a bumped seed / grown budget;
    errors that do not (a genuine protocol violation, a bad config) are
    permanent and retrying them is wasted work.  The reliability engine's
    default :class:`~repro.reliability.RetryPolicy` keys off this marker.
    """


class DeadlockError(SimulationError):
    """The simulation cannot make forward progress."""

    def __init__(self, cycle, detail):
        super().__init__(f"deadlock detected at cycle {cycle}: {detail}")
        self.cycle = cycle
        self.detail = detail

    def __reduce__(self):
        # ``args`` holds the formatted message, not the constructor
        # signature, so the default exception pickling would re-call
        # ``__init__(message)`` and crash on the missing ``detail``.  The
        # reliability supervisor ships errors across a process pipe, so
        # every class in this hierarchy must round-trip.
        return (type(self), (self.cycle, self.detail))


class SimTimeoutError(DeadlockError, TransientError):
    """A cycle or wall-clock budget elapsed before the run finished.

    Distinct from a true :class:`DeadlockError`: the simulator was still
    making forward progress, it just ran out of budget.  Subclasses
    ``DeadlockError`` so existing ``except DeadlockError`` call sites keep
    working, and :class:`TransientError` so the reliability engine retries
    it with a larger budget.
    """

    def __init__(self, cycle, detail):
        # Skip DeadlockError.__init__'s "deadlock detected" phrasing.
        SimulationError.__init__(
            self, f"simulation budget exhausted at cycle {cycle}: {detail}"
        )
        self.cycle = cycle
        self.detail = detail


class FaultInjectionError(SimulationError, TransientError):
    """An injected fault made the run unusable (reliability testing)."""


class WorkerCrashError(TransientError):
    """A sweep worker process died while running a cell.

    Raised (always supervisor-side — the worker is gone) when a worker is
    killed by a signal, exits non-zero, misses its heartbeat deadline, or
    exceeds the RSS ceiling.  Transient: the cell is re-dispatched with a
    bumped seed, and only a cell that kills its worker twice is quarantined
    (see :mod:`repro.reliability.supervisor`).
    """

    def __init__(self, kind, detail, worker_id=None, cell_id=None):
        super().__init__(f"worker crash ({kind}): {detail}")
        self.kind = kind
        self.detail = detail
        self.worker_id = worker_id
        self.cell_id = cell_id

    def __reduce__(self):
        return (
            type(self),
            (self.kind, self.detail, self.worker_id, self.cell_id),
        )


class ServiceProtocolError(TransientError):
    """A service transport failed mid-conversation (cluster tier).

    Raised by :mod:`repro.service.client` and the cluster router when a
    TCP peer refuses the connection, half-closes the socket mid-write
    (a truncated or EOF-cut response line), or exceeds its per-call
    timeout.  The *computation* is untouched — every service request is
    idempotent under its content-addressed cache key — so this is a
    :class:`TransientError`: safe to retry, against the same node or a
    replica.
    """

    def __init__(self, detail, host=None, port=None):
        where = f" ({host}:{port})" if host is not None else ""
        super().__init__(f"service transport failure{where}: {detail}")
        self.detail = detail
        self.host = host
        self.port = port

    def __reduce__(self):
        # Same rule as DeadlockError: args holds the formatted message,
        # so default pickling would double-format; rebuild from fields.
        return (type(self), (self.detail, self.host, self.port))


class SanitizerError(SimulationError):
    """Base class for runtime-sanitizer failures (:mod:`repro.sanitizer`).

    Deliberately *not* a :class:`TransientError`: a sanitizer finding is a
    genuine invariant violation, and re-running with a bumped seed would
    only hide it.  The reliability engine's retry policy additionally
    refuses to retry this class even when a custom ``retry_on`` tuple
    would otherwise match.
    """


class InvariantViolation(SanitizerError):
    """A monitored invariant failed while the machine was running.

    The message always names the offending line address, core and
    triggering event (when applicable) so a violation is actionable
    without re-running under a debugger.  Subclasses classify the
    invariant family; ``invariant`` is the machine-readable tag used in
    reports and journals.
    """

    invariant = "invariant"

    def __init__(self, message, cycle=None, core_id=None, line_addr=None,
                 event=None, trace=()):
        parts = [message]
        if line_addr is not None:
            parts.append(f"line=0x{line_addr:x}")
        if core_id is not None:
            parts.append(f"core={core_id}")
        if event:
            parts.append(f"event={event}")
        if cycle is not None:
            parts.append(f"cycle={cycle}")
        super().__init__(" ".join(parts))
        self.reason = message
        self.cycle = cycle
        self.core_id = core_id
        self.line_addr = line_addr
        self.event = event
        self.trace = tuple(trace)

    def __reduce__(self):
        # Reconstruct from the raw reason plus context fields; the default
        # exception pickling would rebuild from the already-formatted
        # message and drop every attribute (see DeadlockError.__reduce__).
        return (
            type(self),
            (self.reason, self.cycle, self.core_id, self.line_addr,
             self.event, self.trace),
        )

    def to_dict(self):
        """JSON-serializable record for reports and run journals."""
        return {
            "invariant": self.invariant,
            "error_class": type(self).__name__,
            "message": str(self),
            "cycle": self.cycle,
            "core": self.core_id,
            "line": f"0x{self.line_addr:x}" if self.line_addr is not None else None,
            "event": self.event,
            "trace": list(self.trace),
        }


class VisibilityViolation(InvariantViolation):
    """A USL left a trace in visible cache/TLB/prefetcher state."""

    invariant = "visibility"


class CoherenceViolation(InvariantViolation):
    """SWMR, directory agreement or inclusion failed on a transition."""

    invariant = "coherence"


class StructuralViolation(InvariantViolation):
    """A structure leaked or exceeded its bound (MSHR/SB/LQ/SQ/ROB/WB)."""

    invariant = "structural"


class ConsistencyViolation(InvariantViolation):
    """A committed load value disagrees with the golden memory model."""

    invariant = "consistency"
