"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single type at the API boundary while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An architecture or processor configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class ProtocolError(SimulationError):
    """A cache coherence transaction violated the MESI protocol."""


class ConsistencyError(SimulationError):
    """A memory consistency invariant was violated by the model itself."""


class WorkloadError(ReproError):
    """A workload profile or trace request is malformed."""


class DeadlockError(SimulationError):
    """The simulation cannot make forward progress."""

    def __init__(self, cycle, detail):
        super().__init__(f"deadlock detected at cycle {cycle}: {detail}")
        self.cycle = cycle
        self.detail = detail
