"""System assembly: cores + cache hierarchy + NoC + DRAM from parameters.

:class:`System` wires a :class:`~repro.sim.SimKernel`, the shared
:class:`~repro.mem.MemoryImage`, the :class:`~repro.coherence.CacheHierarchy`
and one :class:`~repro.cpu.Core` per trace source, then runs to completion.
This is the main entry point of the library's public API::

    from repro import System, SystemParams, ProcessorConfig, Scheme

    system = System(
        params=SystemParams.for_spec(),
        config=ProcessorConfig(scheme=Scheme.IS_FUTURE),
        traces=[my_trace_source],
    )
    result = system.run()
    print(result.cycles, result.ipc)
"""

from __future__ import annotations

from .configs import ProcessorConfig
from .coherence.hierarchy import CacheHierarchy
from .cpu.core import Core
from .errors import ConfigError
from .mem.address import AddressSpace
from .mem.memimage import MemoryImage
from .params import SystemParams
from .sim.kernel import SimKernel
from .stats.counters import Counters


class RunResult:
    """Outcome of one simulation run.

    When a warmup phase was configured, ``cycles``, ``counters`` (exposed
    via :meth:`count`), and the traffic numbers all refer to the measured
    region only — the paper likewise skips a warmup prefix before its
    1-billion-instruction measurement window.
    """

    def __init__(self, cycles, counters, cores, hierarchy, warmup_snapshot=None):
        self.total_cycles = cycles
        self.counters = counters
        self.cores = cores
        self.hierarchy = hierarchy
        self._snapshot = warmup_snapshot or {}

    @property
    def cycles(self):
        return self.total_cycles - self._snapshot.get("cycle", 0)

    def count(self, name):
        """A counter value for the measured (post-warmup) region."""
        return self.counters.get(name) - self._snapshot.get("counters", {}).get(
            name, 0
        )

    @property
    def instructions(self):
        return sum(core.retired_instructions - core.warmup_instructions
                   for core in self.cores)

    @property
    def ipc(self):
        return self.instructions / max(self.cycles, 1)  # reprolint: disable=float-cycles -- IPC is a reported metric; nothing cycle-affecting consumes this float

    @property
    def traffic_bytes(self):
        snap = self._snapshot.get("traffic", {})
        return self.hierarchy.noc.total_bytes - sum(snap.values())

    @property
    def traffic_breakdown(self):
        snap = self._snapshot.get("traffic", {})
        return {
            category: count - snap.get(category, 0)
            for category, count in self.hierarchy.noc.traffic_breakdown().items()
        }

    def __repr__(self):
        return (
            f"RunResult(cycles={self.cycles}, instructions={self.instructions}, "
            f"ipc={self.ipc:.3f}, traffic={self.traffic_bytes}B)"
        )


class System:
    """A simulated multiprocessor running one trace source per core."""

    def __init__(
        self,
        params,
        config,
        traces,
        max_instructions=None,
        warmup_instructions=0,
        icache_miss_rate=0.0,
        memory_init=None,
        seed=0,
        tracelog=None,
        faults=None,
        watchdog=None,
        heartbeat=None,
        sanitizer=None,
    ):
        if not isinstance(params, SystemParams):
            raise ConfigError(f"params must be SystemParams, got {params!r}")
        if not isinstance(config, ProcessorConfig):
            raise ConfigError(f"config must be ProcessorConfig, got {config!r}")
        if len(traces) != params.num_cores:
            raise ConfigError(
                f"{len(traces)} trace sources for {params.num_cores} cores"
            )
        self.params = params
        self.config = config
        self.kernel = SimKernel()
        # Reliability hooks: a FaultInjector perturbing the hierarchy/kernel
        # and a wall-clock watchdog callback (see repro.reliability).
        self.faults = faults
        if faults is not None:
            faults.bind(self.kernel)
            self.kernel.faults = faults
        if watchdog is not None:
            self.kernel.watchdog = watchdog
        if heartbeat is not None:
            self.kernel.heartbeat = heartbeat
        self.counters = Counters()
        self.space = AddressSpace(
            line_bytes=params.line_bytes, page_bytes=params.tlb.page_bytes
        )
        self.image = MemoryImage(self.space)
        if memory_init:
            for addr, value in memory_init.items():
                self.image.write_bytes(addr, [value] if isinstance(value, int) else value)
        self.hierarchy = CacheHierarchy(
            params, self.kernel, self.image, self.counters, seed=seed,
            faults=faults,
        )
        self.warmup_instructions = warmup_instructions
        self._warmup_pending = params.num_cores if warmup_instructions else 0
        self._warmup_snapshot = None
        total_budget = (
            max_instructions + warmup_instructions
            if max_instructions is not None
            else None
        )
        self.cores = []
        for core_id, trace in enumerate(traces):
            core = Core(
                core_id,
                params,
                config,
                self.kernel,
                self.hierarchy,
                trace,
                self.counters,
                max_instructions=total_budget,
                icache_miss_rate=icache_miss_rate,
                warmup_instructions=warmup_instructions,
                on_warmup_done=self._core_warmed_up,
                tracelog=tracelog,
            )
            self.cores.append(core)
            self.kernel.register(core)
        if config.is_invisispec and config.llc_sb_enabled:
            self.hierarchy.set_llc_sbs([core.llc_sb for core in self.cores])
        # Optional runtime invariant sanitizer (repro.sanitizer): accepts a
        # Sanitizer instance or a mode string ("strict" / "record").
        from .sanitizer import make_sanitizer

        self.sanitizer = make_sanitizer(sanitizer)
        if self.sanitizer is not None:
            self.sanitizer.install(self)

    def _core_warmed_up(self, _core_id):
        """Snapshot counters once every core finished its warmup prefix."""
        self._warmup_pending -= 1
        if self._warmup_pending == 0:
            self._warmup_snapshot = {
                "cycle": self.kernel.cycle,
                "counters": dict(self.counters.as_dict()),
                "traffic": dict(self.hierarchy.noc.traffic_breakdown()),
            }

    def run(self, max_cycles=None):
        """Run every core to completion; returns a :class:`RunResult`.

        Raises :class:`~repro.errors.SimTimeoutError` when ``max_cycles``
        (or an installed wall-clock watchdog) trips, and
        :class:`~repro.errors.DeadlockError` on a genuine lack of forward
        progress.
        """
        cycles = self.kernel.run(max_cycles=max_cycles)
        self._harvest_stats()
        result = RunResult(
            cycles, self.counters, self.cores, self.hierarchy,
            warmup_snapshot=self._warmup_snapshot,
        )
        if self.sanitizer is not None:
            self.sanitizer.finalize(result)
        return result

    def _harvest_stats(self):
        counters = self.counters
        noc = self.hierarchy.noc
        counters.set("noc.total_bytes", noc.total_bytes)
        counters.set("noc.byte_hops", noc.byte_hops)
        counters.set("noc.messages", noc.messages)
        for category, count in noc.traffic_breakdown().items():
            counters.set(f"noc.bytes.{category}", count)
        counters.set("dram.accesses", self.hierarchy.dram.stat_accesses)
        for core in self.cores:
            counters.bump("core.total_retired", core.retired_instructions)
            counters.bump(
                "core.branch_predictor_mispredicts", core.predictor.stat_mispredicts
            )
            counters.bump("core.branch_predictor_lookups", core.predictor.stat_lookups)
            counters.bump("tlb.hits", core.tlb.stat_hits)
            counters.bump("tlb.misses", core.tlb.stat_misses)
            if core.llc_sb is not None:
                counters.bump("invisispec.llc_sb_inserts", core.llc_sb.stat_inserts)
            if core.sb is not None:
                counters.bump("invisispec.sb_fills", core.sb.stat_fills)
