"""Persistent run journal: one JSON file per experiment.

The journal is the reliability engine's source of truth for resume: after
every cell completes (or exhausts its retries) the engine records the
outcome and the journal is atomically rewritten, so a crashed or aborted
harness loses at most the cell that was in flight.  A subsequent
``python -m repro.experiments <name> --resume`` skips cells whose journal
record is ``ok`` — their figure-relevant metrics are reconstructed straight
from the journal — and re-attempts only the failed ones.

File format (``results/journal/<experiment>.json``)::

    {
      "version": 1,
      "experiment": "figure4",
      "cells": {
        "<cell id>": {
          "status": "ok" | "failed",
          "error_class": "DeadlockError",     # failed cells only
          "error_message": "...",
          "cycles": 12345,                    # last attempt's cycle count
          "attempts": [                        # full retry history
            {"seed": 0, "status": "failed", "error_class": "...",
             "wall_ms": 812, "max_cycles": 1000000, "faults": {...}},
            {"seed": 9973, "status": "ok", "wall_ms": 790, ...}
          ],
          "metrics": {...}                    # ok cells only; see engine
        }
      }
    }
"""

from __future__ import annotations

import json
import os

JOURNAL_VERSION = 1


class RunJournal:
    """Crash-safe per-experiment record of cell outcomes."""

    def __init__(self, path, experiment=""):
        self.path = os.fspath(path)
        self.experiment = experiment
        self._cells = {}
        self._load()

    def _load(self):
        if not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            data = json.load(handle)
        self.experiment = data.get("experiment", self.experiment)
        self._cells = dict(data.get("cells", {}))

    def save(self):
        """Atomically rewrite the journal (write temp + rename)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        payload = {
            "version": JOURNAL_VERSION,
            "experiment": self.experiment,
            "cells": self._cells,
        }
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp_path, self.path)

    # ------------------------------------------------------------- records

    def get(self, cell_id):
        return self._cells.get(cell_id)

    def record(self, cell_id, record):
        """Store a cell outcome, extending any prior attempt history."""
        previous = self._cells.get(cell_id)
        if previous is not None:
            record = dict(record)
            record["attempts"] = previous.get("attempts", []) + record.get(
                "attempts", []
            )
        self._cells[cell_id] = record
        self.save()

    def is_completed(self, cell_id):
        record = self._cells.get(cell_id)
        return record is not None and record.get("status") == "ok"

    def completed_ids(self):
        return [cid for cid in self._cells if self.is_completed(cid)]

    def failed_ids(self):
        return [
            cid
            for cid, record in self._cells.items()
            if record.get("status") != "ok"
        ]

    def __len__(self):
        return len(self._cells)

    def __contains__(self, cell_id):
        return cell_id in self._cells
