"""Persistent run journal: one JSON file per experiment.

The journal is the reliability engine's source of truth for resume: after
every cell completes (or exhausts its retries) the engine records the
outcome and the journal is atomically rewritten, so a crashed or aborted
harness loses at most the cell that was in flight.  A subsequent
``python -m repro.experiments <name> --resume`` skips cells whose journal
record is ``ok`` — their figure-relevant metrics are reconstructed straight
from the journal — and re-attempts only the failed ones.

File format (``results/journal/<experiment>.json``)::

    {
      "version": 1,
      "experiment": "figure4",
      "cells": {
        "<cell id>": {
          "status": "ok" | "failed",
          "error_class": "DeadlockError",     # failed cells only
          "error_message": "...",
          "cycles": 12345,                    # last attempt's cycle count
          "attempts": [                        # full retry history
            {"seed": 0, "status": "failed", "error_class": "...",
             "wall_ms": 812, "max_cycles": 1000000, "faults": {...}},
            {"seed": 9973, "status": "ok", "wall_ms": 790, ...}
          ],
          "metrics": {...}                    # ok cells only; see engine
        }
      }
    }
"""

from __future__ import annotations

import json
import os
import warnings

from .atomic_io import atomic_write_text

JOURNAL_VERSION = 1


class RunJournal:
    """Crash-safe per-experiment record of cell outcomes.

    Durability against ``kill -9`` mid-write: the journal is rewritten to a
    temp file which is fsync'd *before* the atomic rename, the previous
    good journal is kept as ``<path>.bak``, and a truncated or corrupt
    main file on load falls back to the backup (or an empty journal) with
    a warning instead of crashing ``--resume``.
    """

    def __init__(self, path, experiment=""):
        self.path = os.fspath(path)
        self.bak_path = self.path + ".bak"
        self.experiment = experiment
        self._cells = {}
        #: Set when the main file was unreadable: "bak" if the backup was
        #: used, "empty" if both copies were lost.
        self.recovered_from = None
        self._load()

    def _read(self, path):
        with open(path) as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or not isinstance(
            data.get("cells", {}), dict
        ):
            raise ValueError(f"journal {path} has no cells mapping")
        return data

    def _load(self):
        for path, origin in ((self.path, None), (self.bak_path, "bak")):
            if not os.path.exists(path):
                continue
            try:
                data = self._read(path)
            except (ValueError, OSError) as error:
                warnings.warn(
                    f"run journal {path} is unreadable ({error}); "
                    f"falling back",
                    stacklevel=3,
                )
                continue
            self.experiment = data.get("experiment", self.experiment)
            self._cells = dict(data.get("cells", {}))
            self.recovered_from = origin
            if origin is not None:
                warnings.warn(
                    f"recovered run journal from backup {path}",
                    stacklevel=3,
                )
            return
        if os.path.exists(self.path):
            # Both copies existed but neither parsed: start empty rather
            # than refuse to resume; completed work is lost but the sweep
            # can re-run it.
            self.recovered_from = "empty"

    def save(self):
        """Atomically rewrite the journal (write temp + fsync + rename).

        The mechanics (fsync temp + ``.bak`` rotation + directory fsync)
        live in :mod:`repro.reliability.atomic_io`, shared with the fuzz
        triage corpus and the service result store.
        """
        payload = {
            "version": JOURNAL_VERSION,
            "experiment": self.experiment,
            "cells": self._cells,
        }
        atomic_write_text(
            self.path,
            json.dumps(payload, indent=2, sort_keys=True),
            backup=True,
        )

    # ------------------------------------------------------------- records

    def get(self, cell_id):
        return self._cells.get(cell_id)

    def record(self, cell_id, record):
        """Store a cell outcome, extending any prior attempt history."""
        previous = self._cells.get(cell_id)
        if previous is not None:
            record = dict(record)
            record["attempts"] = previous.get("attempts", []) + record.get(
                "attempts", []
            )
        self._cells[cell_id] = record
        self.save()

    def is_completed(self, cell_id):
        record = self._cells.get(cell_id)
        return record is not None and record.get("status") == "ok"

    def completed_ids(self):
        return [cid for cid in self._cells if self.is_completed(cid)]

    def failed_ids(self):
        return [
            cid
            for cid, record in self._cells.items()
            if record.get("status") != "ok"
        ]

    def __len__(self):
        return len(self._cells)

    def __contains__(self, cell_id):
        return cell_id in self._cells
