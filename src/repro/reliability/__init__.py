"""Reliability layer: fault-tolerant, resumable, fault-injectable runs.

Three pieces:

* :mod:`~repro.reliability.engine` — the :class:`RunEngine` executes each
  experiment cell with a watchdog, bounded seed-bump retry, graceful
  failure capture, and a failure budget;
* :mod:`~repro.reliability.journal` — the :class:`RunJournal` persists per
  cell outcomes so interrupted sweeps resume instead of restarting;
* :mod:`~repro.reliability.faults` — seeded, deterministic fault injection
  into the NoC, DRAM, coherence and kernel layers, used to exercise the
  simulator's failure detectors and this layer's recovery paths;
* :mod:`~repro.reliability.supervisor` / :mod:`~repro.reliability.worker`
  — the :class:`Supervisor` fans a batch of :class:`CellSpec` cells out
  over a crash-isolated worker pool (``--jobs``): heartbeat liveness,
  RSS ceilings, quarantine of cells that kill their workers, and a
  graceful SIGINT/SIGTERM drain, all feeding the same journal;
* :mod:`~repro.reliability.pool` — the :class:`LeasePool` exposes the
  same crash-isolated workers through a per-task lease API with
  deadline plumbing, built for long-lived callers like the analysis
  service (:mod:`repro.service`);
* :mod:`~repro.reliability.atomic_io` — the shared kill-9-hardened
  write pattern (fsync temp + atomic rename + ``.bak`` rotation) used
  by the journal, the fuzz triage corpus, and the service result store.

See ``docs/RELIABILITY.md`` for the journal format, resume semantics,
retry policy, the fault-schedule language, and parallel execution.
"""

from .atomic_io import atomic_write_json, atomic_write_text
from .engine import (
    CellFailure,
    CellOutcome,
    CellResult,
    RetryPolicy,
    RunEngine,
    WallClockGuard,
    capture_metrics,
    cell_id_for,
    is_ok,
)
from .faults import (
    DROPPED_MESSAGE_DELAY,
    FAULT_SITES,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from .journal import RunJournal
from .pool import LeasePool, PoolClosedError
from .supervisor import QUARANTINE_CRASHES, Supervisor
from .worker import AttemptRequest, AttemptResult, CellSpec, run_attempt

__all__ = [
    "AttemptRequest",
    "AttemptResult",
    "CellFailure",
    "CellOutcome",
    "CellResult",
    "CellSpec",
    "DROPPED_MESSAGE_DELAY",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "LeasePool",
    "PoolClosedError",
    "QUARANTINE_CRASHES",
    "RetryPolicy",
    "RunEngine",
    "RunJournal",
    "Supervisor",
    "WallClockGuard",
    "atomic_write_json",
    "atomic_write_text",
    "capture_metrics",
    "cell_id_for",
    "is_ok",
    "run_attempt",
]
