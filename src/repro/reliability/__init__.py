"""Reliability layer: fault-tolerant, resumable, fault-injectable runs.

Three pieces:

* :mod:`~repro.reliability.engine` — the :class:`RunEngine` executes each
  experiment cell with a watchdog, bounded seed-bump retry, graceful
  failure capture, and a failure budget;
* :mod:`~repro.reliability.journal` — the :class:`RunJournal` persists per
  cell outcomes so interrupted sweeps resume instead of restarting;
* :mod:`~repro.reliability.faults` — seeded, deterministic fault injection
  into the NoC, DRAM, coherence and kernel layers, used to exercise the
  simulator's failure detectors and this layer's recovery paths.

See ``docs/RELIABILITY.md`` for the journal format, resume semantics,
retry policy, and the fault-schedule language.
"""

from .engine import (
    CellFailure,
    CellOutcome,
    CellResult,
    RetryPolicy,
    RunEngine,
    WallClockGuard,
    capture_metrics,
    cell_id_for,
    is_ok,
)
from .faults import (
    DROPPED_MESSAGE_DELAY,
    FAULT_SITES,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from .journal import RunJournal

__all__ = [
    "CellFailure",
    "CellOutcome",
    "CellResult",
    "DROPPED_MESSAGE_DELAY",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "RetryPolicy",
    "RunEngine",
    "RunJournal",
    "WallClockGuard",
    "capture_metrics",
    "cell_id_for",
    "is_ok",
]
