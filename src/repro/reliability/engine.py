"""Fault-tolerant run engine: watchdogs, bounded retry, resume, budgets.

One experiment *cell* is one simulator invocation (``run_spec`` /
``run_parsec`` of one app under one scheme).  The engine executes each cell
as an isolated unit of work:

* a per-cell **watchdog** — a cycle budget (``max_cycles``) enforced inside
  the kernel, plus an optional wall-clock budget checked every
  :data:`~repro.sim.kernel.SimKernel.WATCHDOG_PERIOD` simulated cycles —
  converts runaway runs into :class:`~repro.errors.SimTimeoutError`;
* **bounded retry** with deterministic seed-bump backoff: attempt *k* runs
  with ``seed + k * seed_step`` and a cycle budget grown by
  ``budget_growth**k``, so seed-dependent transients get a genuinely
  different run and budget exhaustion gets more room;
* a **run journal** records every outcome (see
  :mod:`repro.reliability.journal`), so ``--resume`` skips completed cells;
* **fault injection**: a :class:`~repro.reliability.faults.FaultSchedule`
  can be applied to cells matching a glob, to exercise all of the above
  deterministically.

A failed cell yields a :class:`CellFailure`, which the experiment modules
render as a marked gap instead of aborting; the CLI exits non-zero only if
the number of failed cells exceeds the failure budget.
"""

from __future__ import annotations

import fnmatch
import time

from ..errors import (
    DeadlockError,
    ReproError,
    SanitizerError,
    SimTimeoutError,
    TransientError,
)

#: Seed increment between retry attempts.  A largish prime, so bumped seeds
#: never collide with the small consecutive seeds used by seed sweeps.
DEFAULT_SEED_STEP = 9973


class RetryPolicy:
    """Bounded retry with deterministic seed-bump backoff."""

    def __init__(
        self,
        max_attempts=2,
        retry_on=(TransientError, DeadlockError),
        seed_step=DEFAULT_SEED_STEP,
        budget_growth=2.0,
    ):
        self.max_attempts = max(1, max_attempts)
        self.retry_on = tuple(retry_on)
        self.seed_step = seed_step
        self.budget_growth = budget_growth

    def is_retryable(self, error):
        # An invariant violation is evidence of a simulator bug, not a
        # seed-dependent transient: retrying with a bumped seed would just
        # hide it.  Never retryable, whatever ``retry_on`` says.
        if isinstance(error, SanitizerError):
            return False
        return isinstance(error, self.retry_on)

    def seed_for(self, base_seed, attempt):
        """Attempt 0 keeps the requested seed; retries bump deterministically."""
        return base_seed + attempt * self.seed_step

    def budget_for(self, max_cycles, attempt):
        if max_cycles is None:
            return None
        return int(max_cycles * self.budget_growth**attempt)


class WallClockGuard:
    """Kernel watchdog callback enforcing a wall-clock budget per attempt."""

    def __init__(self, limit_s):
        self.limit_s = limit_s
        self.deadline = time.monotonic() + limit_s

    def __call__(self, cycle):
        if time.monotonic() > self.deadline:
            raise SimTimeoutError(
                cycle, f"wall-clock budget of {self.limit_s:.1f}s exceeded"
            )


class CellFailure:
    """Marker standing in for a RunResult when a cell exhausted retries.

    Experiment modules test results with ``is_ok`` and render failures as
    gaps; the error class is kept so tables can label the gap.
    """

    __slots__ = ("cell_id", "error_class", "message")

    def __init__(self, cell_id, error_class, message):
        self.cell_id = cell_id
        self.error_class = error_class
        self.message = message

    def __repr__(self):
        return f"CellFailure({self.cell_id}: {self.error_class})"


def is_ok(result):
    """True when ``result`` is usable data rather than a failure marker."""
    return result is not None and not isinstance(result, CellFailure)


def capture_metrics(result):
    """Flatten a cell result into the JSON-serializable journal metrics.

    Simulation cells return a RunResult and get the standard flattening
    below.  Other cell kinds (e.g. the fuzz campaign's program batches)
    provide their own ``to_metrics()`` and own their journal schema —
    the only field every kind shares is ``cycles``.
    """
    custom = getattr(result, "to_metrics", None)
    if custom is not None:
        return custom()
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "traffic_bytes": result.traffic_bytes,
        "traffic_breakdown": dict(result.traffic_breakdown),
        "counters": {
            name: result.count(name) for name in result.counters.as_dict()
        },
    }


class CellResult:
    """RunResult-compatible view reconstructed from journal metrics.

    Provides the attribute surface the figure/table modules actually use —
    ``cycles``, ``instructions``, ``ipc``, ``traffic_bytes``,
    ``traffic_breakdown`` and ``count()`` — so a resumed experiment renders
    identically to a fresh one without re-simulating completed cells.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics):
        self._metrics = metrics

    @property
    def cycles(self):
        return self._metrics["cycles"]

    @property
    def instructions(self):
        return self._metrics["instructions"]

    @property
    def ipc(self):
        return self.instructions / max(self.cycles, 1)

    @property
    def traffic_bytes(self):
        return self._metrics["traffic_bytes"]

    @property
    def traffic_breakdown(self):
        return self._metrics["traffic_breakdown"]

    def count(self, name):
        return self._metrics["counters"].get(name, 0)

    @property
    def metrics(self):
        """The raw journal metrics dict.

        Cell kinds with a custom ``to_metrics()`` schema (fuzz batches)
        are reconstructed through this rather than the RunResult-shaped
        properties above, so cached-resume aggregation sees exactly what
        a fresh run produced.
        """
        return self._metrics

    def __repr__(self):
        return (
            f"CellResult(cycles={self.cycles}, instructions={self.instructions})"
        )


class CellOutcome:
    """Everything the engine knows about one executed (or skipped) cell."""

    __slots__ = (
        "cell_id",
        "status",  # 'ok' | 'cached' | 'failed' | 'poisoned' | 'skipped'
        "result",
        "error_class",
        "error_message",
        "attempts",
    )

    def __init__(
        self, cell_id, status, result=None, error_class=None,
        error_message=None, attempts=(),
    ):
        self.cell_id = cell_id
        self.status = status
        self.result = result
        self.error_class = error_class
        self.error_message = error_message
        self.attempts = list(attempts)

    @property
    def ok(self):
        return self.status in ("ok", "cached")

    def failure(self):
        return CellFailure(self.cell_id, self.error_class, self.error_message)

    def __repr__(self):
        return f"CellOutcome({self.cell_id}: {self.status})"


class RunEngine:
    """Executes experiment cells with watchdog, retry, journal and faults."""

    def __init__(
        self,
        journal=None,
        policy=None,
        max_cycles=None,
        wall_clock_s=None,
        resume=False,
        fault_schedule=None,
        fault_cells="*",
        failure_budget=0,
        supervisor=None,
    ):
        self.journal = journal
        self.policy = policy or RetryPolicy()
        self.max_cycles = max_cycles
        self.wall_clock_s = wall_clock_s
        self.resume = resume
        self.fault_schedule = fault_schedule
        self.fault_cells = fault_cells
        self.failure_budget = failure_budget
        #: Optional :class:`~repro.reliability.supervisor.Supervisor`;
        #: when set (``--jobs`` > 1), :meth:`run_specs` dispatches cells to
        #: its worker pool instead of running them in-process.
        self.supervisor = supervisor
        self.outcomes = []

    # ------------------------------------------------------------ accounting

    @property
    def failures(self):
        return [o for o in self.outcomes if not o.ok]

    @property
    def budget_exceeded(self):
        return len(self.failures) > self.failure_budget

    @property
    def exit_code(self):
        return 1 if self.budget_exceeded else 0

    # ------------------------------------------------------------- execution

    def schedule_for(self, cell_id):
        """The fault schedule applying to ``cell_id``, or None.

        Used directly by the parallel supervisor, which ships the (shared,
        stateless) schedule to a worker and lets the worker build its own
        per-attempt injector.
        """
        if not self.fault_schedule:
            return None
        if not fnmatch.fnmatch(cell_id, self.fault_cells):
            return None
        return self.fault_schedule

    def _faults_for(self, cell_id):
        schedule = self.schedule_for(cell_id)
        return schedule.injector() if schedule is not None else None

    def prior_attempts(self, cell_id):
        """Journaled attempt count to continue the seed-bump sequence from.

        A cell whose journal record is not ``ok`` (failed, poisoned) has
        already consumed attempts — possibly in a previous session or in a
        worker that crashed — so new attempts must keep walking the
        deterministic ``seed + k * seed_step`` sequence instead of
        restarting at attempt 0 and re-running seeds that already failed.
        Completed cells reset to 0: a deliberate fresh re-run (no
        ``--resume``) should measure the requested seed, not a bumped one.
        """
        if self.journal is None:
            return 0
        record = self.journal.get(cell_id)
        if record is None or record.get("status") == "ok":
            return 0
        return len(record.get("attempts", ()))

    def run_cell(self, cell_id, fn, base_seed=0):
        """Execute one cell; ``fn(seed, max_cycles, watchdog, faults)``.

        Returns a :class:`CellOutcome`.  Never raises a simulation error:
        exhausted retries become a ``failed`` outcome for the caller to
        degrade gracefully on.  Non-simulation errors (``KeyboardInterrupt``,
        programming bugs outside the ``ReproError`` tree) still propagate.
        """
        if self.resume and self.journal is not None:
            record = self.journal.get(cell_id)
            if record is not None and record.get("status") == "ok":
                metrics = record.get("metrics")
                outcome = CellOutcome(
                    cell_id,
                    "cached",
                    result=CellResult(metrics) if metrics else None,
                )
                self.outcomes.append(outcome)
                return outcome

        attempts = []
        outcome = None
        attempt_base = self.prior_attempts(cell_id)
        for attempt in range(self.policy.max_attempts):
            seed = self.policy.seed_for(base_seed, attempt_base + attempt)
            max_cycles = self.policy.budget_for(
                self.max_cycles, attempt_base + attempt
            )
            watchdog = (
                WallClockGuard(self.wall_clock_s)
                if self.wall_clock_s is not None
                else None
            )
            faults = self._faults_for(cell_id)
            started = time.perf_counter()
            attempt_record = {
                "seed": seed,
                "max_cycles": max_cycles,
                "status": "ok",
            }
            try:
                result = fn(
                    seed=seed,
                    max_cycles=max_cycles,
                    watchdog=watchdog,
                    faults=faults,
                )
            except ReproError as error:
                # Only simulation-layer failures are containable; anything
                # else (a programming bug, KeyboardInterrupt) propagates.
                attempt_record["status"] = "failed"
                attempt_record["error_class"] = type(error).__name__
                attempt_record["error_message"] = str(error)
                attempt_record["wall_ms"] = int(
                    1000 * (time.perf_counter() - started)
                )
                if faults is not None:
                    attempt_record["faults"] = faults.summary()
                attempts.append(attempt_record)
                if (
                    self.policy.is_retryable(error)
                    and attempt < self.policy.max_attempts - 1
                ):
                    continue
                outcome = CellOutcome(
                    cell_id,
                    "failed",
                    error_class=type(error).__name__,
                    error_message=str(error),
                    attempts=attempts,
                )
                break
            else:
                attempt_record["wall_ms"] = int(
                    1000 * (time.perf_counter() - started)
                )
                if faults is not None:
                    attempt_record["faults"] = faults.summary()
                # A record-mode sanitizer lets the run finish but stamps its
                # report on the result: violations turn the cell into a
                # failure (counted against --max-failures), with the full
                # report preserved in the journal.  Not retryable — an
                # invariant break is a bug, not a transient.
                sanitizer_report = getattr(result, "sanitizer_report", None)
                if sanitizer_report is not None:
                    attempt_record["sanitizer"] = sanitizer_report
                violations = (
                    sanitizer_report["violations"] if sanitizer_report else ()
                )
                if violations:
                    attempt_record["status"] = "failed"
                    first = violations[0]
                    attempt_record["error_class"] = first.get(
                        "error_class", "InvariantViolation"
                    )
                    attempt_record["error_message"] = first.get("message", "")
                    attempts.append(attempt_record)
                    outcome = CellOutcome(
                        cell_id,
                        "failed",
                        error_class=attempt_record["error_class"],
                        error_message=(
                            f"{len(violations)} invariant violation(s); "
                            f"first: {attempt_record['error_message']}"
                        ),
                        attempts=attempts,
                    )
                    break
                attempts.append(attempt_record)
                outcome = CellOutcome(
                    cell_id, "ok", result=result, attempts=attempts
                )
                break

        if self.journal is not None:
            record = {
                "status": "ok" if outcome.ok else "failed",
                "attempts": attempts,
            }
            if outcome.ok:
                record["cycles"] = outcome.result.cycles
                record["metrics"] = capture_metrics(outcome.result)
            else:
                record["error_class"] = outcome.error_class
                record["error_message"] = outcome.error_message
            self.journal.record(cell_id, record)

        self.outcomes.append(outcome)
        return outcome

    def run_spec_cell(self, spec):
        """Execute one :class:`~repro.reliability.worker.CellSpec` in-process."""
        return self.run_cell(spec.cell_id, spec.run, base_seed=spec.seed)

    def run_specs(self, specs):
        """Execute a batch of cell specs; returns outcomes in spec order.

        This is the single entry point the experiment modules use for
        whole-sweep dispatch: with a :attr:`supervisor` attached the batch
        fans out over its worker pool (crash-isolated, supervised — see
        :mod:`repro.reliability.supervisor`), otherwise each cell runs
        serially in-process exactly as :meth:`run_cell` always has.
        Either way the returned outcome order, the journal contents, and
        the per-cell stats are identical.
        """
        specs = list(specs)
        if self.supervisor is not None and self.supervisor.jobs > 1:
            return self.supervisor.run_specs(self, specs)
        return [self.run_spec_cell(spec) for spec in specs]


def cell_id_for(suite, app, scheme, consistency, seed):
    """Canonical cell identity used in journals and ``--fault-cells`` globs."""
    return f"{suite}:{app}:{scheme.value}:{consistency.value}:s{seed}"
