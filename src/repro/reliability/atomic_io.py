"""Kill-9-hardened file writes, shared across the persistence layers.

The run journal earned this pattern first (PR 4): rewrite to a temp file,
``fsync`` *before* the atomic rename, optionally rotate the previous good
copy to ``<path>.bak``, and fsync the directory so the rename itself
survives a power cut.  The fuzz triage corpus and the analysis service's
result store need exactly the same durability story, so the mechanics
live here once instead of being re-derived (slightly differently) per
subsystem.

Guarantees, assuming a POSIX filesystem:

* a reader never observes a half-written file at ``path`` — it sees
  either the old complete content or the new complete content;
* with ``backup=True``, a crash between the two renames leaves either
  (old main, stale bak) or (no main, good bak); a loader that falls back
  to ``<path>.bak`` (see :class:`~repro.reliability.journal.RunJournal`)
  recovers from both;
* after return, the new content is durable (file fsync'd, directory
  entry fsync'd on a best-effort basis).
"""

from __future__ import annotations

import json
import os

__all__ = ["atomic_write_text", "atomic_write_json", "fsync_directory"]


def fsync_directory(directory):
    """Best-effort fsync of a directory entry (rename durability)."""
    if not directory:
        return
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path, text, backup=False):
    """Atomically replace ``path`` with ``text`` (fsync temp + rename).

    With ``backup=True`` the previous content (if any) is rotated to
    ``<path>.bak`` before the rename, so a crash at any instant leaves a
    recoverable copy on disk.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    if backup and os.path.exists(path):
        os.replace(path, path + ".bak")
    os.replace(tmp_path, path)
    fsync_directory(directory)


def atomic_write_json(path, payload, backup=False, indent=2):
    """Atomically write ``payload`` as canonical (sorted-keys) JSON.

    Sorted keys keep every persisted artifact byte-identical across
    ``PYTHONHASHSEED`` values — the property the journals, the triage
    corpus, and the service result store all assert in tests.
    """
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    atomic_write_text(path, text, backup=backup)
