"""Deterministic fault injection for the memory hierarchy and kernel.

The simulator's failure detectors (:class:`~repro.errors.DeadlockError`,
:class:`~repro.errors.ProtocolError`, the new
:class:`~repro.errors.SimTimeoutError`) normally only fire on real bugs,
which makes the reliability engine's retry/resume/degradation paths hard to
exercise.  This module provides *injectable* faults driven by a seeded
schedule, so a test (or a `--fault` CLI flag) can deterministically produce
exactly the failure mode it wants to study:

=====================  =====================================================
Site                   Effect when triggered
=====================  =====================================================
``noc.delay``          A NoC message takes ``extra`` additional cycles.
``noc.drop``           A NoC message is lost: modeled as an effectively
                       unbounded delay, so the dependent transaction stalls
                       past any cycle budget (``SimTimeoutError``).
``dram.stall``         A DRAM response is withheld for ``extra`` cycles.
``mshr.stuck``         A fill/completion is lost and its MSHR entry stays
                       pinned; the requesting core hangs (``DeadlockError``).
``inv.ack_drop``       The invalidation acks of a store never return; the
                       store never performs (``DeadlockError``).
``inv.drop``           One sharer's invalidation is lost but its ack is
                       spuriously counted: the sharer keeps a stale copy
                       while the store proceeds — a *silent* coherence
                       break (SWMR / directory disagreement) that only the
                       runtime sanitizer (:mod:`repro.sanitizer`) reports;
                       without it the run completes with wrong behavior.
``kernel.event_drop``  A scheduled kernel event is silently lost.
``worker.kill``        A parallel-sweep worker SIGKILLs itself from its
                       heartbeat hook — the cross-process analogue of a
                       segfault/OOM-kill mid-cell.  Only consulted inside
                       pool workers (``--jobs`` > 1); each heartbeat
                       period counts as one operation for ``nth``.
``net.delay``          A cluster router→backend send is delayed ``extra``
                       **milliseconds of wall-clock time** (the cluster
                       tier lives outside the simulated-cycle domain).
                       Models a slow node / congested link; the router's
                       hedged reads and EMA latency detection are the
                       mitigations under test.  Consulted once per
                       backend call by :mod:`repro.service.cluster`.
=====================  =====================================================

Triggers are counted per site: ``FaultSpec(site, nth=5)`` fires on the 5th
operation that consults the site (1-based), ``count`` widens that to a run
of consecutive operations, ``window=(lo, hi)`` additionally restricts
firing to a cycle range, and ``prob`` makes the spec probabilistic using
the schedule's seeded RNG — still reproducible run to run.

Schedule language (used by ``python -m repro.experiments ... --fault``)::

    site[:key=value[,key=value...]]

    --fault dram.stall:nth=2,extra=5000
    --fault mshr.stuck:nth=3
    --fault noc.delay:prob=0.01,extra=200,window=0-50000
"""

from __future__ import annotations

import random

from ..errors import ConfigError

#: All valid fault site names.
FAULT_SITES = (
    "noc.delay",
    "noc.drop",
    "dram.stall",
    "mshr.stuck",
    "inv.ack_drop",
    "inv.drop",
    "kernel.event_drop",
    "worker.kill",
    "net.delay",
)

#: Default extra-delay cycles per site when a spec does not set ``extra``
#: (``net.delay`` is wall-clock milliseconds, not cycles — see table).
DEFAULT_EXTRA = {
    "noc.delay": 200,
    "dram.stall": 5_000,
    "net.delay": 250,
}

#: A dropped message is modeled as this many cycles of delay — far beyond
#: any sane per-cell cycle budget, so the watchdog converts it into a
#: :class:`~repro.errors.SimTimeoutError` rather than a silent wrong result.
DROPPED_MESSAGE_DELAY = 10**9


class FaultSpec:
    """One injectable fault: a site plus its trigger and parameters."""

    __slots__ = ("site", "nth", "count", "extra", "prob", "window")

    def __init__(self, site, nth=None, count=1, extra=None, prob=None, window=None):
        if site not in FAULT_SITES:
            raise ConfigError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        if nth is None and prob is None:
            raise ConfigError(f"fault {site}: needs nth=<k> or prob=<p>")
        if nth is not None and nth < 1:
            raise ConfigError(f"fault {site}: nth is 1-based, got {nth}")
        self.site = site
        self.nth = nth
        self.count = count
        self.extra = extra if extra is not None else DEFAULT_EXTRA.get(site, 0)
        self.prob = prob
        self.window = window

    @classmethod
    def parse(cls, text):
        """Build a spec from the CLI schedule language (see module doc)."""
        site, _, params = text.strip().partition(":")
        kwargs = {}
        if params:
            for item in params.split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                if key == "prob":
                    kwargs[key] = float(value)
                elif key == "window":
                    lo, _, hi = value.partition("-")
                    kwargs[key] = (int(lo), int(hi))
                elif key in ("nth", "count", "extra"):
                    kwargs[key] = int(value)
                else:
                    raise ConfigError(f"fault {site}: unknown parameter {key!r}")
        return cls(site, **kwargs)

    def __repr__(self):
        trig = f"nth={self.nth}" if self.nth is not None else f"prob={self.prob}"
        return f"FaultSpec({self.site}, {trig}, count={self.count}, extra={self.extra})"


class FaultSchedule:
    """An immutable set of :class:`FaultSpec` plus the RNG seed.

    The schedule is shared configuration; per-run trigger state lives in
    the :class:`FaultInjector`, so one schedule can drive many attempts.
    """

    def __init__(self, specs=(), seed=0):
        self.specs = tuple(specs)
        self.seed = seed

    @classmethod
    def parse(cls, texts, seed=0):
        """Parse a list of CLI ``--fault`` strings into a schedule."""
        return cls([FaultSpec.parse(text) for text in texts], seed=seed)

    def injector(self):
        """A fresh, zero-state injector for one run attempt."""
        return FaultInjector(self)

    def __bool__(self):
        return bool(self.specs)

    def __repr__(self):
        return f"FaultSchedule({list(self.specs)!r}, seed={self.seed})"


class FaultAction:
    """What a triggered fault does; handed back to the instrumented site."""

    __slots__ = ("site", "extra", "op_index", "cycle")

    def __init__(self, site, extra, op_index, cycle):
        self.site = site
        self.extra = extra
        self.op_index = op_index
        self.cycle = cycle


class FaultInjector:
    """Per-run trigger state: counts site operations, fires matching specs.

    Instrumented components call ``fire(site)`` once per operation at that
    site and apply the returned :class:`FaultAction` (or nothing, for
    ``None``).  The injector records every fired fault in ``log`` so tests
    and the run journal can assert exactly what was injected.
    """

    def __init__(self, schedule):
        self.schedule = schedule
        self._rng = random.Random(schedule.seed)
        self._op_counts = {site: 0 for site in FAULT_SITES}
        self._by_site = {}
        for spec in schedule.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._fired_counts = {id(spec): 0 for spec in schedule.specs}
        self.kernel = None
        self.log = []

    def bind(self, kernel):
        """Attach the kernel so cycle-windowed triggers can read the clock."""
        self.kernel = kernel

    def _now(self, cycle):
        if cycle is not None:
            return cycle
        return self.kernel.cycle if self.kernel is not None else 0

    def fire(self, site, cycle=None):
        """One operation at ``site``; returns a FaultAction if a spec fires."""
        specs = self._by_site.get(site)
        self._op_counts[site] += 1
        if not specs:
            return None
        op_index = self._op_counts[site]
        now = self._now(cycle)
        for spec in specs:
            fired = self._fired_counts[id(spec)]
            if fired >= spec.count:
                continue
            if spec.window is not None and not (
                spec.window[0] <= now <= spec.window[1]
            ):
                continue
            if spec.nth is not None:
                if not (spec.nth <= op_index < spec.nth + spec.count):
                    continue
            elif self._rng.random() >= spec.prob:
                continue
            self._fired_counts[id(spec)] = fired + 1
            action = FaultAction(site, spec.extra, op_index, now)
            self.log.append(
                {
                    "site": site,
                    "op_index": op_index,
                    "cycle": now,
                    "extra": spec.extra,
                }
            )
            return action
        return None

    @property
    def fired(self):
        """Total faults injected so far."""
        return len(self.log)

    def summary(self):
        """{site: times fired}, for journals and assertions."""
        counts = {}
        for entry in self.log:
            counts[entry["site"]] = counts.get(entry["site"], 0) + 1
        return counts
