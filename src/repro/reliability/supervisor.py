"""Supervised parallel sweep execution: a crash-isolated worker pool.

The :class:`Supervisor` runs a batch of experiment cells across ``jobs``
worker processes (:mod:`repro.reliability.worker`) while the existing
:class:`~repro.reliability.RunEngine` keeps owning policy and persistence:
retry seeds/budgets come from the engine's
:class:`~repro.reliability.RetryPolicy`, outcomes land in the engine's
:class:`~repro.reliability.RunJournal` (written only by this parent
process), and failures feed the same ``--max-failures`` accounting and
gap rendering the serial path uses.

Supervision, per worker:

* **heartbeats** — workers stamp a shared array from the kernel's
  heartbeat hook every ``WATCHDOG_PERIOD`` simulated cycles; a busy
  worker whose stamp goes stale past ``heartbeat_timeout`` seconds is
  hard-killed (SIGKILL) and its cell journaled as a failed attempt;
* **RSS ceiling** — ``max_rss`` is enforced twice: ``RLIMIT_AS`` inside
  the worker (allocations fail with a containable ``MemoryError``) and
  supervisor-side ``/proc/<pid>/statm`` polling (SIGKILL past the
  ceiling, for leaks the rlimit cannot see);
* **death** — a worker that exits or is killed by a signal is detected
  via its sentinel; its in-flight cell becomes a journaled
  :class:`~repro.errors.WorkerCrashError` attempt and the pool is
  replenished with a fresh worker.

A crashed cell re-enters the normal seed-bump retry sequence — the
attempt index continues from the journaled count, never restarts — but a
cell that kills its worker :data:`QUARANTINE_CRASHES` times is
**quarantined**: journaled with status ``poisoned`` and reported as a gap
like any other degraded cell, so one poisonous cell cannot chew through
the whole pool.

SIGINT/SIGTERM trigger a **graceful drain**: dispatch stops, in-flight
cells finish (still under heartbeat/wall-clock supervision), the journal
is flushed, and ``KeyboardInterrupt`` propagates — Ctrl-C never loses
completed work, and ``--resume`` picks up exactly where the drain
stopped.  A second signal aborts hard (workers SIGKILLed, journal kept).

Determinism: cells are dispatched in spec order, retries derive only
from per-cell attempt indices, and results are merged back in spec
order, so a parallel sweep produces the same journal contents (modulo
wall-clock timing fields), figures, and tables as ``--jobs 1``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait

from ..errors import WorkerCrashError
from .engine import CellOutcome, CellResult
from .worker import AttemptRequest, worker_main

#: Worker deaths after which a cell is quarantined instead of retried.
QUARANTINE_CRASHES = 2


def _rss_bytes(pid):
    """Resident set size of ``pid`` in bytes, or None where /proc is absent."""
    try:
        with open(f"/proc/{pid}/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def _death_detail(process):
    code = process.exitcode
    if code is None:
        return "vanished"
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:
            name = f"signal {-code}"
        return f"killed by {name}"
    return f"exit code {code}"


class _Worker:
    """Parent-side handle for one pool worker."""

    __slots__ = (
        "worker_id", "process", "task_conn", "result_conn",
        "request", "dispatched_at", "released",
    )

    def __init__(self, worker_id, process, task_conn, result_conn):
        self.worker_id = worker_id
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.request = None  # in-flight AttemptRequest
        self.dispatched_at = 0.0
        self.released = False  # pipes + process handle freed

    @property
    def busy(self):
        return self.request is not None

    def release(self):
        """Free this worker's parent-side fds *now*, not at GC time.

        Three fds per worker (task pipe, result pipe, process sentinel)
        would otherwise linger on the dropped handle until the garbage
        collector happens to run its finalizers — which a long-lived
        serving process (:mod:`repro.service`) cannot afford: a cell
        that quarantines 50 times must not grow the fd table.  Safe to
        call twice; the process must already be dead/joined.
        """
        if self.released:
            return
        self.released = True
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass
        try:
            self.process.close()
        except ValueError:
            # Still alive (close() refuses): leave the handle for the
            # finalizer rather than leak a zombie.
            pass


class _CellState:
    """Supervisor-side bookkeeping for one not-yet-finished cell."""

    __slots__ = ("spec", "cell_id", "attempt_base", "attempts", "crashes")

    def __init__(self, spec, attempt_base):
        self.spec = spec
        self.cell_id = spec.cell_id
        self.attempt_base = attempt_base
        self.attempts = []  # this session's attempt records
        self.crashes = 0  # worker deaths attributed to this cell


class Supervisor:
    """Crash-isolated parallel executor for a batch of cell specs."""

    def __init__(
        self,
        jobs=1,
        max_rss=None,
        heartbeat_timeout=60.0,
        poll_interval=0.05,
        start_method=None,
        quarantine_crashes=QUARANTINE_CRASHES,
    ):
        self.jobs = max(1, int(jobs))
        self.max_rss = max_rss
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.quarantine_crashes = quarantine_crashes
        #: Lifecycle counters, exposed for tests and reporting.
        self.stats = {
            "workers_spawned": 0,
            "workers_crashed": 0,
            "heartbeat_kills": 0,
            "rss_kills": 0,
            "cells_quarantined": 0,
        }
        self.drain_requested = False
        self.hard_abort = False
        self.drained = False
        self._ctx = None
        self._heartbeats = None
        self._old_handlers = {}

    # --------------------------------------------------------------- signals

    def request_drain(self):
        """Stop dispatching; finish in-flight cells; flush and stop.

        Idempotent; the second request (second Ctrl-C) escalates to a
        hard abort.  Safe to call from a signal handler or another
        thread — the run loop polls these flags every ``poll_interval``.
        """
        if self.drain_requested:
            self.hard_abort = True
        else:
            self.drain_requested = True

    def _on_signal(self, signum, frame):
        print(
            "[reliability] signal received: draining — in-flight cells "
            "finish, queued cells are left for --resume "
            "(signal again to abort hard)",
            file=sys.stderr,
        )
        self.request_drain()

    def _install_signal_handlers(self):
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                self._old_handlers[sig] = signal.signal(sig, self._on_signal)
        except ValueError:
            # Not the main thread: drains can still be requested directly.
            self._old_handlers = {}

    def _restore_signal_handlers(self):
        for sig, handler in self._old_handlers.items():
            signal.signal(sig, handler)
        self._old_handlers = {}

    # --------------------------------------------------------------- workers

    def _spawn_worker(self, worker_id):
        # Pipe(duplex=False) returns (receive end, send end).
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id, task_recv, result_send, self._heartbeats,
                self.max_rss,
            ),
            name=f"sweep-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        task_recv.close()
        result_send.close()
        self.stats["workers_spawned"] += 1
        self._heartbeats[worker_id] = time.monotonic()
        return _Worker(worker_id, process, task_send, result_recv)

    def _shutdown_worker(self, worker, kill=False):
        if worker.released:
            return
        try:
            if not kill and worker.process.is_alive():
                worker.task_conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=0.2 if kill else 2.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        worker.release()

    def _kill_worker(self, worker):
        if worker.process.is_alive():
            try:
                worker.process.kill()
            except OSError:
                pass
        worker.process.join(timeout=2.0)

    # ------------------------------------------------------------- execution

    def run_specs(self, engine, specs):
        """Execute ``specs`` on the pool; returns outcomes in spec order.

        The engine provides policy (seeds, budgets, retryability), the
        journal, resume semantics, and fault-schedule scoping; this
        method owns dispatch, supervision, and deterministic merging.
        Raises ``KeyboardInterrupt`` after a drain (completed work is
        journaled) and propagates nothing else from cell failures.
        """
        order = []
        states = {}
        outcomes = {}
        pending = deque()
        for spec in specs:
            cell_id = spec.cell_id
            order.append(cell_id)
            cached = self._cached_outcome(engine, cell_id)
            if cached is not None:
                outcomes[cell_id] = cached
                continue
            states[cell_id] = _CellState(spec, engine.prior_attempts(cell_id))
            pending.append(cell_id)

        if states:
            self._execute(engine, states, pending, outcomes)

        completed = [outcomes[cid] for cid in order if cid in outcomes]
        engine.outcomes.extend(completed)
        if self.drained or self.hard_abort:
            raise KeyboardInterrupt(
                f"sweep drained: {len(completed)}/{len(order)} cells "
                f"journaled; re-run with --resume to continue"
            )
        return [outcomes[cid] for cid in order]

    def _cached_outcome(self, engine, cell_id):
        if not (engine.resume and engine.journal is not None):
            return None
        record = engine.journal.get(cell_id)
        if record is None or record.get("status") != "ok":
            return None
        metrics = record.get("metrics")
        return CellOutcome(
            cell_id,
            "cached",
            result=CellResult(metrics) if metrics else None,
        )

    def _execute(self, engine, states, pending, outcomes):
        self.drain_requested = False
        self.hard_abort = False
        self.drained = False
        self._ctx = multiprocessing.get_context(self.start_method)
        pool_size = min(self.jobs, max(1, len(states)))
        self._heartbeats = self._ctx.Array("d", pool_size, lock=False)
        workers = []
        self._install_signal_handlers()
        try:
            workers[:] = [self._spawn_worker(i) for i in range(pool_size)]
            remaining = set(states)
            while remaining - set(outcomes):
                if self.hard_abort:
                    break
                self._dispatch(engine, workers, states, pending)
                if self.drain_requested and not any(
                    w.busy for w in workers
                ):
                    self.drained = True
                    break
                self._pump_results(
                    engine, workers, states, pending, outcomes
                )
                self._reap_dead(engine, workers, states, pending, outcomes)
                self._enforce_deadlines(
                    engine, workers, states, pending, outcomes
                )
        finally:
            for worker in workers:
                self._shutdown_worker(worker, kill=self.hard_abort)
            self._restore_signal_handlers()
            self._heartbeats = None
        if self.drain_requested:
            self.drained = True

    def _dispatch(self, engine, workers, states, pending):
        if self.drain_requested:
            return
        for worker in workers:
            if not pending:
                return
            if worker.released or worker.busy or not worker.process.is_alive():
                continue
            cell_id = pending.popleft()
            state = states[cell_id]
            attempt_index = state.attempt_base + len(state.attempts)
            request = AttemptRequest(
                spec=state.spec,
                attempt_index=attempt_index,
                seed=engine.policy.seed_for(state.spec.seed, attempt_index),
                max_cycles=engine.policy.budget_for(
                    engine.max_cycles, attempt_index
                ),
                wall_clock_s=engine.wall_clock_s,
                schedule=engine.schedule_for(cell_id),
            )
            now = time.monotonic()
            self._heartbeats[worker.worker_id] = now
            worker.dispatched_at = now
            worker.request = request
            try:
                worker.task_conn.send(request)
            except (BrokenPipeError, OSError):
                # Worker died while idle; not the cell's fault — requeue
                # at the front without consuming an attempt, and let
                # _reap_dead replace the worker.
                worker.request = None
                pending.appendleft(cell_id)
                return

    def _pump_results(self, engine, workers, states, pending, outcomes):
        live = [w for w in workers if not w.released]
        by_conn = {w.result_conn: w for w in live}
        sentinels = {w.process.sentinel: w for w in live}
        try:
            ready = _conn_wait(
                list(by_conn) + list(sentinels), timeout=self.poll_interval
            )
        except OSError:
            return
        for item in ready:
            worker = by_conn.get(item)
            if worker is None:
                continue  # sentinel: handled by _reap_dead
            self._recv_result(engine, worker, states, pending, outcomes)

    def _recv_result(self, engine, worker, states, pending, outcomes):
        try:
            if not worker.result_conn.poll():
                return
            payload = worker.result_conn.recv()
        except (EOFError, OSError):
            return  # death; _reap_dead attributes the in-flight cell
        if worker.request is None or payload.cell_id not in states:
            return  # stale message from a worker already written off
        worker.request = None
        state = states[payload.cell_id]
        self._complete_attempt(engine, state, payload, pending, outcomes)

    def _reap_dead(self, engine, workers, states, pending, outcomes):
        for index, worker in enumerate(workers):
            if worker.released or worker.process.is_alive():
                continue
            # The worker may have finished its cell and died afterwards
            # (or been killed mid-send): drain any complete payload first.
            self._recv_result(engine, worker, states, pending, outcomes)
            if worker.busy:
                self.stats["workers_crashed"] += 1
                detail = _death_detail(worker.process)
                self._crash_attempt(
                    engine, worker, "signal" if (worker.process.exitcode or 0) < 0
                    else "exit", detail, states, pending, outcomes,
                )
            self._kill_worker(worker)
            # Release pipes and the process handle immediately — a
            # quarantining cell churns through workers, and fds must not
            # accumulate until process exit (regression:
            # tests/reliability/test_pool.py::test_no_fd_growth_across_quarantines).
            worker.release()
            if not (self.drain_requested or self.hard_abort):
                workers[index] = self._spawn_worker(worker.worker_id)

    def _enforce_deadlines(self, engine, workers, states, pending, outcomes):
        now = time.monotonic()
        for worker in workers:
            if not worker.busy or not worker.process.is_alive():
                continue
            last_beat = max(
                self._heartbeats[worker.worker_id], worker.dispatched_at
            )
            if (
                self.heartbeat_timeout is not None
                and now - last_beat > self.heartbeat_timeout
            ):
                self.stats["heartbeat_kills"] += 1
                self._kill_worker(worker)
                self._crash_attempt(
                    engine, worker, "heartbeat",
                    f"no heartbeat for {now - last_beat:.1f}s "
                    f"(deadline {self.heartbeat_timeout:.1f}s)",
                    states, pending, outcomes,
                )
                continue
            if self.max_rss is not None:
                rss = _rss_bytes(worker.process.pid)
                if rss is not None and rss > self.max_rss:
                    self.stats["rss_kills"] += 1
                    self._kill_worker(worker)
                    self._crash_attempt(
                        engine, worker, "rss",
                        f"RSS {rss} exceeds ceiling {self.max_rss}",
                        states, pending, outcomes,
                    )

    # ------------------------------------------------- attempt bookkeeping

    def _complete_attempt(self, engine, state, payload, pending, outcomes):
        """An attempt ran to completion in a worker (ok or failed)."""
        record = {
            "seed": payload.seed,
            "max_cycles": payload.max_cycles,
            "status": payload.status,
            "wall_ms": payload.wall_ms,
        }
        if payload.faults is not None:
            record["faults"] = payload.faults
        if payload.status == "ok":
            if payload.sanitizer_report is not None:
                record["sanitizer"] = payload.sanitizer_report
            violations = (
                payload.sanitizer_report["violations"]
                if payload.sanitizer_report
                else ()
            )
            if violations:
                # Mirror the serial engine: a record-mode sanitizer report
                # fails the cell, without retry.
                first = violations[0]
                record["status"] = "failed"
                record["error_class"] = first.get(
                    "error_class", "InvariantViolation"
                )
                record["error_message"] = first.get("message", "")
                state.attempts.append(record)
                self._journal_failed_attempt(engine, state, record)
                self._finalize_failed(
                    engine, state, outcomes,
                    error_class=record["error_class"],
                    error_message=(
                        f"{len(violations)} invariant violation(s); "
                        f"first: {record['error_message']}"
                    ),
                )
                return
            state.attempts.append(record)
            self._finalize_ok(engine, state, payload, record, outcomes)
            return
        record["error_class"] = payload.error_class
        record["error_message"] = payload.error_message
        state.attempts.append(record)
        self._journal_failed_attempt(engine, state, record)
        retryable = payload.error is not None and engine.policy.is_retryable(
            payload.error
        )
        if retryable and len(state.attempts) < engine.policy.max_attempts:
            pending.append(state.cell_id)
            return
        self._finalize_failed(
            engine, state, outcomes,
            error_class=payload.error_class,
            error_message=payload.error_message,
        )

    def _crash_attempt(
        self, engine, worker, kind, detail, states, pending, outcomes
    ):
        """The worker died (or was killed) with a cell in flight."""
        request = worker.request
        worker.request = None
        if request is None or request.spec.cell_id not in states:
            return
        state = states[request.spec.cell_id]
        error = WorkerCrashError(
            kind, detail, worker_id=worker.worker_id, cell_id=state.cell_id
        )
        record = {
            "seed": request.seed,
            "max_cycles": request.max_cycles,
            "status": "failed",
            "error_class": type(error).__name__,
            "error_message": str(error),
            "wall_ms": int(1000 * (time.monotonic() - worker.dispatched_at)),
        }
        state.attempts.append(record)
        state.crashes += 1
        if state.crashes >= self.quarantine_crashes:
            self.stats["cells_quarantined"] += 1
            self._finalize_poisoned(engine, state, record, outcomes)
            return
        self._journal_failed_attempt(engine, state, record)
        if len(state.attempts) < engine.policy.max_attempts:
            pending.append(state.cell_id)
            return
        self._finalize_failed(
            engine, state, outcomes,
            error_class=record["error_class"],
            error_message=record["error_message"],
        )

    def _journal_failed_attempt(self, engine, state, record):
        """Journal a failed attempt immediately — a crash of the
        *supervisor* right after must not lose it (the attempt index and
        seed sequence are reconstructed from the journal on resume)."""
        if engine.journal is None:
            return
        engine.journal.record(
            state.cell_id,
            {
                "status": "failed",
                "error_class": record.get("error_class"),
                "error_message": record.get("error_message"),
                "attempts": [record],
            },
        )

    def _finalize_ok(self, engine, state, payload, record, outcomes):
        result = CellResult(payload.metrics)
        if engine.journal is not None:
            engine.journal.record(
                state.cell_id,
                {
                    "status": "ok",
                    "attempts": [record],
                    "cycles": result.cycles,
                    "metrics": payload.metrics,
                },
            )
        outcomes[state.cell_id] = CellOutcome(
            state.cell_id, "ok", result=result, attempts=state.attempts
        )

    def _finalize_failed(
        self, engine, state, outcomes, error_class, error_message
    ):
        # Individual failed attempts are already journaled; refresh the
        # cell-level error fields to the final attempt's.
        if engine.journal is not None:
            engine.journal.record(
                state.cell_id,
                {
                    "status": "failed",
                    "error_class": error_class,
                    "error_message": error_message,
                    "attempts": [],
                },
            )
        outcomes[state.cell_id] = CellOutcome(
            state.cell_id,
            "failed",
            error_class=error_class,
            error_message=error_message,
            attempts=state.attempts,
        )

    def _finalize_poisoned(self, engine, state, record, outcomes):
        message = (
            f"quarantined after {state.crashes} worker crashes; "
            f"last: {record['error_message']}"
        )
        if engine.journal is not None:
            engine.journal.record(
                state.cell_id,
                {
                    "status": "poisoned",
                    "error_class": record["error_class"],
                    "error_message": message,
                    "attempts": [record],
                },
            )
        outcomes[state.cell_id] = CellOutcome(
            state.cell_id,
            "poisoned",
            error_class=record["error_class"],
            error_message=message,
            attempts=state.attempts,
        )
