"""Long-lived crash-isolated worker pool with a per-task *lease* API.

The batch :class:`~repro.reliability.supervisor.Supervisor` owns a whole
sweep: it takes a list of cell specs, runs its own retry/quarantine
policy, and tears the pool down when the batch ends.  A serving process
(:mod:`repro.service`) needs the opposite shape — a pool that outlives
any one request, where each unit of work is *leased* individually and
the caller owns policy:

* :meth:`LeasePool.submit` takes one duck-typed cell spec (anything with
  ``.cell_id`` and ``.run(seed, max_cycles, watchdog, faults,
  heartbeat=None)``) and returns a :class:`concurrent.futures.Future`
  that resolves to the worker's
  :class:`~repro.reliability.worker.AttemptResult` — or raises
  :class:`~repro.errors.WorkerCrashError` if the worker died, stalled
  past its heartbeat deadline, breached the RSS ceiling, or blew its
  per-lease deadline;
* **deadline plumbing**: a per-lease wall-clock budget is propagated
  *into* the worker as a kernel watchdog
  (:class:`~repro.reliability.engine.WallClockGuard` — the run fails
  with a retryable ``SimTimeoutError``) and additionally enforced
  pool-side with a grace period — a worker wedged so hard its watchdog
  never fires is SIGKILLed, so a lease can never hang its caller;
* supervision is the same story as the batch supervisor (shared
  heartbeat array, ``/proc`` RSS polling, sentinel-based death
  detection), and worker handles are **released eagerly** — pipes and
  process handles are closed the moment a worker is reaped, never left
  to garbage-collector timing (see ``_Worker.release``), because a
  serving process runs for days and its fd table is a budget.

Retry, backoff, caching, and quarantine deliberately live in the caller
(:mod:`repro.service.server`): the pool hands out honest failures fast
and keeps itself replenished; policy belongs to the layer that knows the
request's deadline and client.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import Future
from multiprocessing.connection import wait as _conn_wait

from ..errors import ReproError, WorkerCrashError
from .supervisor import _Worker, _death_detail, _rss_bytes
from .worker import AttemptRequest, worker_main

__all__ = ["LeasePool", "PoolClosedError"]


class PoolClosedError(ReproError):
    """A lease was submitted to (or stranded in) a closed pool."""


class _Lease:
    """One submitted unit of work awaiting a worker."""

    __slots__ = ("request", "future", "deadline", "worker_id")

    def __init__(self, request, future, deadline):
        self.request = request
        self.future = future
        self.deadline = deadline  # absolute monotonic, or None
        self.worker_id = None


class LeasePool:
    """Crash-isolated worker pool leasing one attempt at a time."""

    def __init__(
        self,
        workers=2,
        max_rss=None,
        heartbeat_timeout=60.0,
        poll_interval=0.02,
        start_method=None,
        deadline_grace=1.0,
    ):
        self.workers = max(1, int(workers))
        self.max_rss = max_rss
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.deadline_grace = deadline_grace
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.stats = {
            "workers_spawned": 0,
            "workers_crashed": 0,
            "heartbeat_kills": 0,
            "rss_kills": 0,
            "deadline_kills": 0,
            "leases_completed": 0,
        }
        self._ctx = None
        self._heartbeats = None
        self._pool = []  # _Worker handles
        self._inflight = {}  # worker_id -> _Lease
        self._queue = deque()
        self._lock = threading.Lock()
        self._thread = None
        self._closing = False
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self):
        """Spawn the workers and the supervision thread (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._closing = False
        self._ctx = multiprocessing.get_context(self.start_method)
        self._heartbeats = self._ctx.Array("d", self.workers, lock=False)
        self._pool = [self._spawn(i) for i in range(self.workers)]
        self._thread = threading.Thread(
            target=self._supervise, name="lease-pool", daemon=True
        )
        self._thread.start()
        return self

    def close(self, kill=False, timeout=5.0):
        """Stop supervision and tear the pool down.

        Queued leases fail with :class:`PoolClosedError`; in-flight
        leases fail with a :class:`~repro.errors.WorkerCrashError` once
        their worker is killed (``kill=True``) or are given until
        ``timeout`` to finish first.
        """
        with self._lock:
            if not self._started or self._closing:
                self._started = False
                return
            self._closing = True
        if not kill:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._inflight:
                        break
                time.sleep(self.poll_interval)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        with self._lock:
            stranded = list(self._queue)
            self._queue.clear()
            inflight = list(self._inflight.values())
            self._inflight.clear()
            pool, self._pool = self._pool, []
            self._started = False
        for lease in stranded:
            self._fail(lease, PoolClosedError("pool closed before dispatch"))
        for worker in pool:
            if worker.released:
                continue
            self._kill(worker)
            worker.release()
        for lease in inflight:
            self._fail(
                lease,
                WorkerCrashError(
                    "shutdown", "pool closed with lease in flight",
                    worker_id=lease.worker_id,
                    cell_id=lease.request.spec.cell_id,
                ),
            )
        self._heartbeats = None

    # --------------------------------------------------------------- leasing

    def submit(
        self,
        spec,
        seed=0,
        max_cycles=None,
        wall_clock_s=None,
        deadline=None,
        attempt_index=0,
        schedule=None,
    ):
        """Lease one attempt of ``spec``; returns a Future.

        ``wall_clock_s`` becomes the in-worker watchdog budget;
        ``deadline`` (absolute ``time.monotonic()`` value) is the
        pool-side backstop past which the worker is killed.  When only a
        deadline is given the watchdog budget is derived from it, so the
        soft (in-worker, retryable timeout) path always fires before the
        hard (SIGKILL) one.
        """
        future = Future()
        if deadline is not None and wall_clock_s is None:
            wall_clock_s = max(0.01, deadline - time.monotonic())
        request = AttemptRequest(
            spec=spec,
            attempt_index=attempt_index,
            seed=seed,
            max_cycles=max_cycles,
            wall_clock_s=wall_clock_s,
            schedule=schedule,
        )
        with self._lock:
            if not self._started or self._closing:
                future.set_exception(PoolClosedError("pool is not running"))
                return future
            self._queue.append(_Lease(request, future, deadline))
        return future

    @property
    def backlog(self):
        with self._lock:
            return len(self._queue)

    @property
    def busy(self):
        with self._lock:
            return len(self._inflight)

    @property
    def idle(self):
        with self._lock:
            return max(0, len(self._pool) - len(self._inflight))

    def snapshot(self):
        """JSON-serializable pool state for ``/healthz``."""
        with self._lock:
            workers = []
            for worker in self._pool:
                lease = self._inflight.get(worker.worker_id)
                alive = (not worker.released) and worker.process.is_alive()
                workers.append({
                    "worker": worker.worker_id,
                    "alive": alive,
                    "busy": lease is not None,
                    "cell": (
                        lease.request.spec.cell_id if lease is not None
                        else None
                    ),
                })
            return {
                "workers": workers,
                "backlog": len(self._queue),
                "inflight": len(self._inflight),
                "stats": dict(self.stats),
            }

    # ----------------------------------------------------------- supervision

    def _spawn(self, worker_id):
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id, task_recv, result_send, self._heartbeats,
                self.max_rss,
            ),
            name=f"lease-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        task_recv.close()
        result_send.close()
        self.stats["workers_spawned"] += 1
        self._heartbeats[worker_id] = time.monotonic()
        return _Worker(worker_id, process, task_send, result_recv)

    def _kill(self, worker):
        try:
            if worker.process.is_alive():
                worker.process.kill()
        except (OSError, ValueError):
            pass
        try:
            worker.process.join(timeout=2.0)
        except ValueError:
            pass

    def _fail(self, lease, error):
        if not lease.future.done():
            lease.future.set_exception(error)

    def _complete(self, lease, payload):
        if not lease.future.done():
            self.stats["leases_completed"] += 1
            lease.future.set_result(payload)

    def _supervise(self):
        while True:
            self._dispatch()
            self._pump()  # paces the loop (poll_interval wait)
            self._reap()
            self._enforce()
            with self._lock:
                if self._closing and not self._inflight:
                    break

    def _dispatch(self):
        while True:
            with self._lock:
                if not self._queue or self._closing:
                    return
                worker = next(
                    (
                        w for w in self._pool
                        if not w.released
                        and w.worker_id not in self._inflight
                    ),
                    None,
                )
                if worker is None:
                    return
                lease = self._queue.popleft()
                if lease.future.cancelled():
                    continue
                if (
                    lease.deadline is not None
                    and time.monotonic() >= lease.deadline
                ):
                    expired = lease
                    lease = None
                else:
                    lease.worker_id = worker.worker_id
                    self._inflight[worker.worker_id] = lease
                    now = time.monotonic()
                    self._heartbeats[worker.worker_id] = now
                    worker.dispatched_at = now
                    worker.request = lease.request
            if lease is None:
                self._fail(
                    expired,
                    WorkerCrashError(
                        "deadline", "lease deadline expired before dispatch",
                        cell_id=expired.request.spec.cell_id,
                    ),
                )
                continue
            try:
                worker.task_conn.send(lease.request)
            except (BrokenPipeError, OSError):
                # Worker died while idle: not the lease's fault — requeue
                # at the front and let _reap replace the worker.
                with self._lock:
                    self._inflight.pop(worker.worker_id, None)
                    worker.request = None
                    lease.worker_id = None
                    self._queue.appendleft(lease)
                return

    def _pump(self):
        with self._lock:
            live = [w for w in self._pool if not w.released]
        by_conn = {w.result_conn: w for w in live}
        sentinels = {w.process.sentinel: w for w in live}
        try:
            ready = _conn_wait(
                list(by_conn) + list(sentinels), timeout=self.poll_interval
            )
        except OSError:
            return
        for item in ready:
            worker = by_conn.get(item)
            if worker is not None:
                self._recv(worker)

    def _recv(self, worker):
        try:
            if not worker.result_conn.poll():
                return
            payload = worker.result_conn.recv()
        except (EOFError, OSError):
            return  # death: _reap attributes the in-flight lease
        with self._lock:
            lease = self._inflight.pop(worker.worker_id, None)
            worker.request = None
        if lease is not None:
            self._complete(lease, payload)

    def _reap(self):
        with self._lock:
            pool = list(self._pool)
        for index, worker in enumerate(pool):
            if worker.released or worker.process.is_alive():
                continue
            # The worker may have completed its lease and died after —
            # drain any whole payload before writing the lease off.
            self._recv(worker)
            detail = _death_detail(worker.process)
            kind = (
                "signal" if (worker.process.exitcode or 0) < 0 else "exit"
            )
            with self._lock:
                lease = self._inflight.pop(worker.worker_id, None)
                worker.request = None
            self._kill(worker)
            worker.release()
            if lease is not None:
                self.stats["workers_crashed"] += 1
                self._fail(
                    lease,
                    WorkerCrashError(
                        kind, detail, worker_id=worker.worker_id,
                        cell_id=lease.request.spec.cell_id,
                    ),
                )
            with self._lock:
                if (
                    not self._closing
                    and index < len(self._pool)
                    and self._pool[index] is worker
                ):
                    self._pool[index] = self._spawn(worker.worker_id)

    def _enforce(self):
        now = time.monotonic()
        with self._lock:
            busy = [
                (w, self._inflight[w.worker_id])
                for w in self._pool
                if not w.released and w.worker_id in self._inflight
            ]
        for worker, lease in busy:
            if not worker.process.is_alive():
                continue  # _reap handles death
            reason = None
            last_beat = max(
                self._heartbeats[worker.worker_id], worker.dispatched_at
            )
            if (
                self.heartbeat_timeout is not None
                and now - last_beat > self.heartbeat_timeout
            ):
                self.stats["heartbeat_kills"] += 1
                reason = (
                    "heartbeat",
                    f"no heartbeat for {now - last_beat:.1f}s "
                    f"(deadline {self.heartbeat_timeout:.1f}s)",
                )
            elif (
                lease.deadline is not None
                and now > lease.deadline + self.deadline_grace
            ):
                # The in-worker WallClockGuard should have fired first;
                # reaching this backstop means the worker is wedged
                # beyond even its own watchdog.
                self.stats["deadline_kills"] += 1
                reason = (
                    "deadline",
                    f"lease deadline exceeded by "
                    f"{now - lease.deadline:.1f}s (grace "
                    f"{self.deadline_grace:.1f}s)",
                )
            elif self.max_rss is not None:
                rss = _rss_bytes(worker.process.pid)
                if rss is not None and rss > self.max_rss:
                    self.stats["rss_kills"] += 1
                    reason = (
                        "rss", f"RSS {rss} exceeds ceiling {self.max_rss}"
                    )
            if reason is None:
                continue
            kind, detail = reason
            self.stats["workers_crashed"] += 1
            with self._lock:
                self._inflight.pop(worker.worker_id, None)
                worker.request = None
            self._kill(worker)
            self._fail(
                lease,
                WorkerCrashError(
                    kind, detail, worker_id=worker.worker_id,
                    cell_id=lease.request.spec.cell_id,
                ),
            )
            # _reap releases the handle and respawns on the next pass.
