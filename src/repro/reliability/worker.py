"""Worker-process side of the supervised parallel sweep executor.

One worker is one long-lived child process of the
:class:`~repro.reliability.supervisor.Supervisor`.  It receives
:class:`AttemptRequest` messages (one *attempt* of one experiment cell:
a fully resolved seed and cycle budget) over its task pipe, runs the cell
in-process, and ships an :class:`AttemptResult` back over its result pipe.
Everything crossing a pipe is pickle-safe by construction — plain data
plus the :mod:`repro.errors` hierarchy, which round-trips by contract
(``tests/test_errors.py::TestPickleRoundTrip``).

Crash isolation is the point: a ``MemoryError``, recursion blowup, or
outright SIGKILL in one cell takes down at most this process, never the
sweep.  Liveness is reported through a shared heartbeat array stamped
from the kernel's heartbeat hook every
:data:`~repro.sim.kernel.SimKernel.WATCHDOG_PERIOD` simulated cycles, so
a worker that stops making simulated progress (wedged tick loop, blocked
syscall) stops heartbeating and is hard-killed by the supervisor.

The heartbeat hook is also where the ``worker.kill`` fault site lives:
a triggered spec SIGKILLs the worker mid-cell, which is how the test
suite and CI produce real worker deaths deterministically.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from dataclasses import dataclass

from ..configs import ProcessorConfig
from ..errors import ReproError
from .engine import WallClockGuard, capture_metrics, cell_id_for


@dataclass(frozen=True)
class CellSpec:
    """Pickle-safe description of one experiment cell.

    Carries everything needed to rebuild the ``run_spec``/``run_parsec``
    call in another process; the closure-based ``cell_fn`` style the
    serial engine historically used cannot cross a pipe.
    """

    suite: str  # "spec" | "parsec"
    app: str
    scheme: object  # repro.configs.Scheme
    consistency: object  # repro.configs.ConsistencyModel
    seed: int = 0
    instructions: int = None
    sanitize: str = None

    @property
    def cell_id(self):
        return cell_id_for(
            self.suite, self.app, self.scheme, self.consistency, self.seed
        )

    def run(self, seed, max_cycles, watchdog, faults, heartbeat=None):
        """Execute this cell (same signature the RunEngine hands cell fns)."""
        # Late import so monkeypatched ``repro.runner`` entry points are
        # honored — fork-started workers inherit test patches that way.
        from .. import runner

        fn = runner.run_spec if self.suite == "spec" else runner.run_parsec
        kwargs = {}
        if self.instructions is not None:
            kwargs["instructions"] = self.instructions
        if self.sanitize is not None:
            kwargs["sanitize"] = self.sanitize
        config = ProcessorConfig(
            scheme=self.scheme, consistency=self.consistency
        )
        return fn(
            self.app,
            config,
            seed=seed,
            max_cycles=max_cycles,
            watchdog=watchdog,
            heartbeat=heartbeat,
            faults=faults,
            **kwargs,
        )


@dataclass(frozen=True)
class AttemptRequest:
    """One attempt of one cell, fully resolved by the supervisor."""

    spec: CellSpec
    attempt_index: int  # global index in the cell's seed-bump sequence
    seed: int
    max_cycles: int = None
    wall_clock_s: float = None
    schedule: object = None  # FaultSchedule scoped to this cell, or None


@dataclass
class AttemptResult:
    """What one attempt produced, as it crosses the result pipe."""

    cell_id: str
    attempt_index: int
    seed: int
    max_cycles: int
    status: str  # 'ok' | 'failed'
    worker_id: int = -1
    wall_ms: int = 0
    metrics: dict = None
    sanitizer_report: dict = None
    faults: dict = None  # injector summary; None when no injector ran
    error: BaseException = None  # pickled instance when transportable
    error_class: str = None
    error_message: str = None


def _transportable(error):
    """The error itself when it pickles, else None (fields still carry
    class name and message)."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return None


def run_attempt(request, worker_id=-1, heartbeats=None):
    """Execute one attempt in this process; never raises.

    Shared by :func:`worker_main` and by unit tests that want the exact
    worker behavior without a child process.
    """
    spec = request.spec
    injector = (
        request.schedule.injector() if request.schedule is not None else None
    )
    wall_guard = (
        WallClockGuard(request.wall_clock_s)
        if request.wall_clock_s is not None
        else None
    )

    def heartbeat(cycle):
        if heartbeats is not None:
            heartbeats[worker_id] = time.monotonic()
        if injector is not None and injector.fire("worker.kill") is not None:
            # Simulated worker death: indistinguishable from a segfault or
            # the OOM killer from the supervisor's point of view.
            os.kill(os.getpid(), signal.SIGKILL)

    result = AttemptResult(
        cell_id=spec.cell_id,
        attempt_index=request.attempt_index,
        seed=request.seed,
        max_cycles=request.max_cycles,
        status="ok",
        worker_id=worker_id,
    )
    started = time.perf_counter()
    try:
        run = spec.run(
            seed=request.seed,
            max_cycles=request.max_cycles,
            watchdog=wall_guard,
            faults=injector,
            heartbeat=heartbeat,
        )
    except ReproError as error:
        result.status = "failed"
        result.error = _transportable(error)
        result.error_class = type(error).__name__
        result.error_message = str(error)
    except Exception as error:
        # Crash isolation: an interpreter-level fault in a cell —
        # MemoryError from the RSS rlimit, RecursionError, anything — must
        # not take the worker (let alone the sweep) down.  Unlike the serial
        # engine, which lets programming errors propagate to the user's
        # terminal, a pool worker has nobody to propagate to — the error
        # is journaled against the cell instead.
        result.status = "failed"
        result.error = _transportable(error)
        result.error_class = type(error).__name__
        result.error_message = str(error)
    else:
        try:
            result.metrics = capture_metrics(run)
            result.sanitizer_report = getattr(run, "sanitizer_report", None)
        except Exception as error:
            # A malformed result object (broken to_metrics/count) must
            # fail the attempt, not escape and kill the worker process.
            result.status = "failed"
            result.metrics = None
            result.error = _transportable(error)
            result.error_class = type(error).__name__
            result.error_message = str(error)
    result.wall_ms = int(1000 * (time.perf_counter() - started))
    if injector is not None:
        result.faults = injector.summary()
    return result


def worker_main(worker_id, task_conn, result_conn, heartbeats, max_rss=None):
    """Entry point of one pool worker process.

    Loops over attempt requests until it receives the ``None`` shutdown
    sentinel or its pipes close (supervisor gone).  Exits via
    ``os._exit`` so a fork-started worker never runs the parent's atexit
    handlers or flushes its inherited stdio buffers.
    """
    # The supervisor coordinates shutdown: a terminal Ctrl-C must reach
    # the parent (which drains) and not kill in-flight cells directly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    if max_rss is not None:
        try:
            import resource

            # RLIMIT_AS bounds the address space, the closest enforceable
            # proxy for RSS: an allocation past the ceiling raises
            # MemoryError *inside* the cell, which the attempt loop
            # contains.  The supervisor additionally polls true RSS.
            resource.setrlimit(resource.RLIMIT_AS, (max_rss, max_rss))
        except (ImportError, ValueError, OSError):
            pass
    exit_code = 0
    try:
        while True:
            try:
                request = task_conn.recv()
            except (EOFError, OSError):
                exit_code = 1
                break
            if request is None:
                break
            heartbeats[worker_id] = time.monotonic()
            payload = run_attempt(
                request, worker_id=worker_id, heartbeats=heartbeats
            )
            try:
                result_conn.send(payload)
            except (BrokenPipeError, OSError):
                exit_code = 1
                break
    finally:
        os._exit(exit_code)
