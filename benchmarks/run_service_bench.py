"""Load benchmark for the analysis service (repro.service).

Drives an in-process :class:`~repro.service.server.AnalysisService`
through four phases and records ``results/BENCH_service.json``:

1. **cold** — one request per unique (program, model) specflow job;
   every one is a cache miss that runs on the worker pool;
2. **hot** — the same set repeated ``--repeats`` times; with r repeats
   the steady-state hit rate is r/(r+1) (>= 90% at the default 12);
3. **overload** — a concurrent burst of unique uncacheable requests
   against a small admission queue: the shed rate under overload is the
   backpressure behaving, not a failure;
4. **chaos** — an injected worker crash (``worker.kill`` fault) must
   fail explicitly, and a corrupted cache shard must be quarantined and
   recomputed.

Correctness is asserted throughout: every hot response must be
bit-identical (canonical JSON) to the cold response for the same key —
``wrong_answers`` counts mismatches and the benchmark fails unless it
is zero.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py
        [--repeats 12] [--out results/BENCH_service.json]
"""

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.reliability import LeasePool  # noqa: E402
from repro.service.envelope import JobRequest, canonical_json  # noqa: E402
from repro.service.server import AnalysisService  # noqa: E402
from repro.service.store import ResultStore  # noqa: E402
from repro.specflow import programs as corpus  # noqa: E402


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _requests():
    names = [program.name for program in corpus.all_programs(seed=0)]
    return [
        {"program": name, "model": model}
        for name in names
        for model in ("spectre", "futuristic")
    ]


async def _submit_timed(service, payload, **options):
    started = time.perf_counter()
    response = await service.submit(
        JobRequest("specflow", payload, **options)
    )
    return response, 1000.0 * (time.perf_counter() - started)


async def _phase_cold_hot(service, repeats):
    payloads = _requests()
    baseline = {}
    cold_ms, hot_ms = [], []
    wrong = 0
    for payload in payloads:
        response, ms = await _submit_timed(service, payload)
        assert response["status"] == "ok", response
        baseline[response["key"]] = canonical_json(response["metrics"])
        cold_ms.append(ms)
    responses = 0
    hits = 0
    for _ in range(repeats):
        for payload in payloads:
            response, ms = await _submit_timed(service, payload)
            assert response["status"] == "ok", response
            responses += 1
            hits += 1 if response.get("cached") else 0
            hot_ms.append(ms)
            if canonical_json(response["metrics"]) != baseline[response["key"]]:
                wrong += 1
    total = responses + len(payloads)
    return {
        "unique_requests": len(payloads),
        "repeats": repeats,
        "total_requests": total,
        "hit_rate": round((hits) / total, 4),
        "p50_cold_ms": round(_percentile(cold_ms, 0.50), 3),
        "p99_cold_ms": round(_percentile(cold_ms, 0.99), 3),
        "p50_hot_ms": round(_percentile(hot_ms, 0.50), 3),
        "p99_hot_ms": round(_percentile(hot_ms, 0.99), 3),
    }, wrong


async def _phase_overload(service):
    # Unique uncached requests force real computes; far more of them at
    # once than queue + workers can hold exercises the shedding path.
    burst = [
        JobRequest(
            "specflow",
            {"program": "spectre_v1", "window": 16 + i},
            client_id=f"load{i % 4}",
            nocache=True,
        )
        for i in range(48)
    ]
    responses = await asyncio.gather(
        *(service.submit(request) for request in burst)
    )
    statuses = [response["status"] for response in responses]
    assert all(status in ("ok", "shed") for status in statuses), statuses
    shed = statuses.count("shed")
    return {
        "burst": len(burst),
        "completed": statuses.count("ok"),
        "shed": shed,
        "shed_rate": round(shed / len(burst), 4),
    }


async def _phase_chaos(service):
    # Injected worker crash: the worker.kill fault SIGKILLs the worker on
    # every attempt, so the request must end in an explicit failure.  The
    # fault fires from the kernel heartbeat hook, which runs every 4096
    # simulated cycles -- the run must be long enough to reach it.
    crash = await service.submit(
        JobRequest(
            "sim",
            {
                "app": "mcf",
                "instructions": 4000,
                "fault": "worker.kill:nth=1",
            },
        )
    )
    assert crash["status"] == "failed", crash
    assert crash["error_class"] == "WorkerCrashError", crash

    # Corrupt shard: flip bytes in a cached entry, re-request, and
    # verify the recomputed answer matches the original bit for bit.
    payload = {"program": "spectre_v1", "model": "spectre"}
    before = await service.submit(JobRequest("specflow", payload))
    path = service.store.path_for(before["key"])
    path.write_bytes(path.read_bytes()[:-16] + b"!corrupted-tail!")
    after = await service.submit(JobRequest("specflow", payload))
    assert after["status"] == "ok" and not after.get("cached"), after
    identical = canonical_json(after["metrics"]) == canonical_json(
        before["metrics"]
    )
    return {
        "worker_crash_failed_explicitly": True,
        "corrupt_shards_quarantined": service.store.stats[
            "corrupt_quarantined"
        ],
        "corrupt_recompute_identical": identical,
    }, 0 if identical else 1


async def _run(repeats, store_dir):
    service = AnalysisService(
        store=ResultStore(store_dir),
        pool=LeasePool(workers=2, heartbeat_timeout=60.0),
        max_depth=8,
        backoff_base_s=0.01,
    )
    await service.start()
    try:
        cache, wrong_hot = await _phase_cold_hot(service, repeats)
        overload = await _phase_overload(service)
        chaos, wrong_chaos = await _phase_chaos(service)
        health = service.healthz()
    finally:
        await service.drain(timeout=10)
    return {
        "benchmark": "analysis_service",
        "cache": cache,
        "overload": overload,
        "chaos": chaos,
        "wrong_answers": wrong_hot + wrong_chaos,
        "counters": health["counters"],
        "pool_stats": health["pool"]["stats"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument(
        "--out", default=os.path.join("results", "BENCH_service.json")
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        loop = asyncio.new_event_loop()
        try:
            record = loop.run_until_complete(
                _run(args.repeats, os.path.join(tmp, "cache"))
            )
        finally:
            loop.close()

    assert record["wrong_answers"] == 0, record
    assert record["cache"]["hit_rate"] >= 0.90, record["cache"]
    assert record["overload"]["shed"] > 0, record["overload"]

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump([record], handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
