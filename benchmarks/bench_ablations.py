"""Design-choice ablation benchmarks (DESIGN.md section 4)."""

from conftest import run_once

from repro.experiments import ablations


def test_ablations(benchmark):
    result = run_once(
        benchmark,
        ablations.run,
        app="libquantum",
        v2e_app="gamess",
        parsec_app="canneal",
        instructions=1500,
    )
    print()
    print(result.text)

    rows = {row[0]: row for row in result.rows}
    reference = rows["libquantum IS-Fu (full design)"]
    no_llc_sb = rows["libquantum IS-Fu no-llc-sb"]
    # Removing the LLC-SB forces second DRAM accesses for memory-sourced
    # validations/exposures, and costs real cycles.
    assert no_llc_sb[4] > reference[4]  # DRAM accesses
    assert no_llc_sb[2] > 1.2  # normalized cycles

    v2e_ref = rows["gamess IS-Fu (full design)"]
    no_v2e = rows["gamess IS-Fu no-val-to-exp"]
    # Without the V->E transformation there are at least as many
    # validations and no more exposures.
    assert no_v2e[5] >= v2e_ref[5]
    assert no_v2e[6] <= v2e_ref[6]

    early_on = rows["2-core race IS-Fu (early squash)"]
    early_off = rows["2-core race IS-Fu no-early-squash"]
    # Section V-C2: with the optimization, stale USLs die early; without
    # it they survive to their validations and fail there.
    assert early_on[7] > 0  # early squashes happened
    assert early_off[7] == 0
    assert early_off[8] >= 1  # converted into validation failures
