"""Figure 8 benchmark: PARSEC network traffic."""

from conftest import run_once

from repro.experiments import figure8


def test_figure8_parsec_traffic(benchmark, parsec_budget):
    apps, instructions = parsec_budget
    result = run_once(
        benchmark,
        figure8.run,
        apps=apps,
        instructions=instructions,
        include_rc=False,
    )
    print()
    print(result.text)

    average = result.row_for("average")
    base, fe_sp, is_sp, fe_fu, is_fu = average[1:6]
    assert base == 1.0
    # Paper: IS-Sp=1.13, IS-Fu=1.33; fences at or below Base.  At the
    # reduced bench scale the IS-Sp/IS-Fu ordering is noisy, so only the
    # coarser shape is asserted.
    assert is_fu > 0.9
    assert is_sp > 1.0
    assert fe_sp <= 1.4
    assert fe_fu <= 1.6
    # The IS bars carry a visible SpecLoad + Expose/Validate share.
    blackscholes = result.row_for("blackscholes")
    assert "%" in blackscholes[6]
