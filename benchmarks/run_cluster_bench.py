"""Load benchmark for the replicated analysis cluster (repro.service.cluster).

Drives a real :class:`~repro.service.cluster.ClusterRouter` over three
in-process :class:`~repro.service.server.AnalysisService` backends
(real worker pools, real specflow jobs) and records
``results/BENCH_cluster.json``:

1. **replication** — one cold request per unique specflow job through
   the router; every result must reach R=2 ring owners;
2. **hedging** — one backend is made slow with the ``net.delay`` fault
   (120 ms on every router->backend call); repeat reads of keys whose
   primary holder is the slow node are measured twice: with hedging
   enabled (adaptive p95 trigger) and with the hedge disabled (trigger
   floor pushed past the delay).  The hedged p99 must beat the
   unhedged p99;
3. **kill** — one backend is torn down mid-benchmark and the full
   request set replayed concurrently: availability is the fraction that
   still answers ``ok`` (failover), and after the active detector marks
   the node down, re-replication must restore R=2 for every key.

Correctness is asserted throughout: every response is compared
bit-for-bit (canonical JSON) against the cold baseline for its key —
``wrong_answers`` must be zero or the benchmark fails.

Usage::

    PYTHONPATH=src python benchmarks/run_cluster_bench.py
        [--reads 30] [--out results/BENCH_cluster.json]
"""

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.reliability import LeasePool  # noqa: E402
from repro.reliability.faults import FaultSchedule  # noqa: E402
from repro.service.cluster import ClusterRouter  # noqa: E402
from repro.service.envelope import JobRequest, canonical_json  # noqa: E402
from repro.service.server import AnalysisService, _handle_connection  # noqa: E402
from repro.service.store import ResultStore  # noqa: E402
from repro.specflow import programs as corpus  # noqa: E402

SLOW_NODE_DELAY_MS = 120


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _payloads():
    names = [program.name for program in corpus.all_programs(seed=0)]
    return [{"program": name, "model": "spectre"} for name in names]


async def _start_backends(root, count):
    services, servers, backends = {}, {}, []
    for i in range(count):
        node = f"n{i}"
        service = AnalysisService(
            store=ResultStore(os.path.join(root, f"store-{node}")),
            pool=LeasePool(workers=1, heartbeat_timeout=60.0,
                           poll_interval=0.01),
            backoff_base_s=0.01,
        )
        await service.start()
        server = await asyncio.start_server(
            lambda r, w, s=service: _handle_connection(s, r, w),
            "127.0.0.1", 0,
        )
        services[node] = service
        servers[node] = server
        backends.append(
            (node, "127.0.0.1", server.sockets[0].getsockname()[1])
        )
    return services, servers, backends


async def _submit_timed(router, payload):
    started = time.perf_counter()
    response = await router.submit(
        {"op": "submit", "kind": "specflow", "payload": payload}
    )
    return response, 1000.0 * (time.perf_counter() - started)


async def _wait_replicated(router, keys, copies, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        short = [
            key for key in keys
            if len(router.journal.nodes_for(key)) < copies
        ]
        if not short:
            return
        await asyncio.sleep(0.02)
    raise AssertionError(f"{len(short)} keys never reached R={copies}")


async def _phase_replication(router, payloads):
    baseline = {}
    for payload in payloads:
        response, _ = await _submit_timed(router, payload)
        assert response["status"] == "ok", response
        baseline[JobRequest("specflow", payload).cache_key] = canonical_json(
            response["metrics"]
        )
    await _wait_replicated(router, baseline, router.replication)
    return baseline, {
        "unique_requests": len(payloads),
        "replicated_r2": len(baseline),
    }


async def _phase_hedging(router, payloads, baseline, reads):
    # Slow down exactly one node: keys whose primary holder it is are
    # the ones a hedged read can rescue.
    by_primary = {}
    for payload in payloads:
        key = JobRequest("specflow", payload).cache_key
        by_primary.setdefault(router.ring.primary(key), []).append(payload)
    slow = max(by_primary, key=lambda node: len(by_primary[node]))
    victims = by_primary[slow]
    # count= keeps the fault firing for the whole phase (default is a
    # single shot).
    schedule = FaultSchedule.parse(
        [f"net.delay:prob=1.0,extra={SLOW_NODE_DELAY_MS},count=1000000"],
        seed=0,
    )
    router.links[slow].injector = schedule.injector()
    floor = router.hedge_floor_s
    wrong = 0
    try:
        hedged_ms = []
        for i in range(reads):
            payload = victims[i % len(victims)]
            response, ms = await _submit_timed(router, payload)
            assert response["status"] == "ok", response
            key = JobRequest("specflow", payload).cache_key
            if canonical_json(response["metrics"]) != baseline[key]:
                wrong += 1
            hedged_ms.append(ms)
        hedge_wins = router.counters["hedge_wins"]

        # Disable hedging by pushing the trigger delay past the fault:
        # the same reads now wait out the slow primary.
        router.hedge_floor_s = 30.0
        unhedged_ms = []
        for i in range(reads):
            payload = victims[i % len(victims)]
            response, ms = await _submit_timed(router, payload)
            assert response["status"] == "ok", response
            key = JobRequest("specflow", payload).cache_key
            if canonical_json(response["metrics"]) != baseline[key]:
                wrong += 1
            unhedged_ms.append(ms)
    finally:
        router.hedge_floor_s = floor
        router.links[slow].injector = None
    return {
        "slow_node": slow,
        "slow_node_delay_ms": SLOW_NODE_DELAY_MS,
        "reads_per_mode": reads,
        "hedge_wins": hedge_wins,
        "hedged_p50_ms": round(_percentile(hedged_ms, 0.50), 3),
        "hedged_p99_ms": round(_percentile(hedged_ms, 0.99), 3),
        "unhedged_p50_ms": round(_percentile(unhedged_ms, 0.50), 3),
        "unhedged_p99_ms": round(_percentile(unhedged_ms, 0.99), 3),
    }, wrong


async def _phase_kill(router, servers, payloads, baseline, victim):
    # Tear the backend down for real: stop accepting and drop the
    # router's pipelined connection so the next call meets a dead peer.
    servers[victim].close()
    await servers[victim].wait_closed()
    await router.links[victim].reset()

    responses = await asyncio.gather(
        *(
            router.submit(
                {"op": "submit", "kind": "specflow", "payload": payload}
            )
            for payload in payloads
        )
    )
    ok = shed = wrong = 0
    for payload, response in zip(payloads, responses):
        if response["status"] == "ok":
            ok += 1
            key = JobRequest("specflow", payload).cache_key
            if canonical_json(response["metrics"]) != baseline[key]:
                wrong += 1
        elif response["status"] == "shed":
            shed += 1
            assert response["retry_after_s"] > 0, response
        else:
            raise AssertionError(f"unexpected status: {response}")

    # Active detection marks the victim down, then re-replication must
    # restore R=2 from the surviving holders.
    for _ in range(router.health[victim].down_after):
        await router._ping_node(victim)
    assert not router.health[victim].up
    deadline = time.monotonic() + 120
    while router._tasks and time.monotonic() < deadline:
        await asyncio.gather(*router._tasks, return_exceptions=True)
    status = await router.status()
    return {
        "victim": victim,
        "requests": len(payloads),
        "ok": ok,
        "shed": shed,
        "availability": round(ok / len(payloads), 4),
        "failovers": router.counters["failovers"],
        "rereplications": router.counters["rereplications"],
        "under_replicated_after": status["replicas"]["under_replicated"],
    }, wrong


async def _run(root, reads):
    services, servers, backends = await _start_backends(root, 3)
    router = ClusterRouter(
        backends,
        call_timeout_s=5.0,
        ping_timeout_s=0.5,
        hedge_floor_s=0.005,
    )
    try:
        payloads = _payloads()
        baseline, replication = await _phase_replication(router, payloads)
        hedging, wrong_hedge = await _phase_hedging(
            router, payloads, baseline, reads
        )
        victim = next(
            node for node in router.ring.nodes
            if node != hedging["slow_node"]
        )
        kill, wrong_kill = await _phase_kill(
            router, servers, payloads, baseline, victim
        )
        counters = dict(router.counters)
    finally:
        await router.drain(timeout=10)
        for server in servers.values():
            server.close()
            await server.wait_closed()
        for service in services.values():
            await service.drain(timeout=10)
    return {
        "benchmark": "analysis_cluster",
        "nodes": 3,
        "replication": 2,
        "replication_phase": replication,
        "hedging": hedging,
        "kill": kill,
        "wrong_answers": wrong_hedge + wrong_kill,
        "counters": counters,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reads", type=int, default=30,
                        help="hedged/unhedged reads per mode")
    parser.add_argument(
        "--out", default=os.path.join("results", "BENCH_cluster.json")
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        loop = asyncio.new_event_loop()
        try:
            record = loop.run_until_complete(_run(tmp, args.reads))
        finally:
            loop.close()

    assert record["wrong_answers"] == 0, record
    assert record["kill"]["availability"] >= 0.9, record["kill"]
    assert record["kill"]["under_replicated_after"] == 0, record["kill"]
    assert record["hedging"]["hedge_wins"] > 0, record["hedging"]
    assert (
        record["hedging"]["hedged_p99_ms"]
        < record["hedging"]["unhedged_p99_ms"]
    ), record["hedging"]

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump([record], handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
