"""Table VI benchmark: characterization of InvisiSpec under TSO."""

from conftest import run_once

from repro.experiments import table6


def test_table6_characterization(benchmark):
    result = run_once(
        benchmark,
        table6.run,
        spec_apps=("sjeng", "libquantum", "hmmer"),
        parsec_apps=("swaptions",),
        instructions=1500,
    )
    print()
    print(result.text)

    per_app = result.extras["per_app"]
    from repro.configs import Scheme

    for app_stats in per_app.values():
        for stats in app_stats.values():
            total = (
                stats["exposures_pct"]
                + stats["val_l1_hit_pct"]
                + stats["val_l1_miss_pct"]
            )
            assert abs(total - 100.0) < 1.0 or total == 0.0
            # Paper: validation failures are practically zero.
            assert stats["squash_validation_pct"] < 20.0
            # Paper: LLC-SB hit rates are very high (99+%), L1-SB low.
            if stats["llc_sb_hit_rate_pct"]:
                assert stats["llc_sb_hit_rate_pct"] > 60.0

    # sjeng squashes far more than libquantum (73,752 vs ~0 per 1M insn).
    sjeng = per_app["sjeng"][Scheme.IS_FUTURE]["squashes_per_m"]
    libquantum = per_app["libquantum"][Scheme.IS_FUTURE]["squashes_per_m"]
    assert sjeng > 10 * max(libquantum, 1)
