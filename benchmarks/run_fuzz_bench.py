"""Measure fuzz-campaign throughput, serial vs. parallel.

Runs the same differential campaign twice — in-process serial and on
the supervised worker pool with ``--jobs N`` — verifies the two produce
byte-identical summaries and corpora (the campaign's bit-identity
guarantee doubles as the benchmark's correctness check), and records
programs/second for both in ``results/BENCH_fuzz.json``.

As with the parallel sweep benchmark, the speedup is bounded by real
cores: on a single-core machine the pool only adds supervision
overhead, which is why ``cpu_count`` is recorded next to the ratio.

Usage::

    PYTHONPATH=src python benchmarks/run_fuzz_bench.py [--programs 64]
        [--jobs 4] [--seed 0] [--out results/BENCH_fuzz.json]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.fuzz import run_campaign  # noqa: E402


def _timed_campaign(programs, seed, out_dir, jobs):
    started = time.perf_counter()
    result = run_campaign(
        programs=programs, seed=seed, jobs=jobs, out_dir=out_dir,
        max_minimize=0,
    )
    elapsed = time.perf_counter() - started
    assert result.summary["missing_verdicts"] == 0, result.failed_cells
    return elapsed, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", type=int, default=64)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=os.path.join("results", "BENCH_fuzz.json")
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = os.path.join(tmp, "serial")
        parallel_dir = os.path.join(tmp, "parallel")
        serial_s, serial_result = _timed_campaign(
            args.programs, args.seed, serial_dir, jobs=1
        )
        parallel_s, parallel_result = _timed_campaign(
            args.programs, args.seed, parallel_dir, jobs=args.jobs
        )
        identical = serial_result.summary == parallel_result.summary

    entry = {
        "benchmark": "fuzz_campaign",
        "programs": args.programs,
        "seed": args.seed,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "serial_programs_per_s": round(args.programs / serial_s, 3),
        "parallel_programs_per_s": round(args.programs / parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "summaries_identical": identical,
        "by_classification": serial_result.summary["by_classification"],
        "evidence": serial_result.summary["evidence"],
        "precision_by_template": serial_result.summary[
            "precision_by_template"
        ],
        "note": (
            "speedup is bounded by physical cores; on cpu_count=1 the "
            "pool time-shares one CPU and the ratio reflects pure "
            "supervision overhead"
        ),
    }
    existing = []
    if os.path.exists(args.out):
        with open(args.out) as handle:
            existing = json.load(handle)
    existing.append(entry)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")
    print(json.dumps(entry, indent=2))
    if not identical:
        print(
            "ERROR: serial and parallel campaign summaries differ",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
