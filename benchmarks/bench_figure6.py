"""Figure 6 benchmark: normalized SPEC network traffic with the
SpecLoad / Expose+Validate breakdown."""

from conftest import run_once

from repro.experiments import figure6


def test_figure6_spec_traffic(benchmark, spec_budget):
    apps, instructions = spec_budget
    result = run_once(
        benchmark,
        figure6.run,
        apps=apps,
        instructions=instructions,
        include_rc=False,
    )
    print()
    print(result.text)

    average = result.row_for("average")
    base, fe_sp, is_sp, fe_fu, is_fu = average[1:6]
    assert base == 1.0
    # Paper: IS-Sp +35%, IS-Fu +59% traffic; fences stay near Base.
    assert is_sp > 1.0
    assert is_fu > 1.0
    assert is_fu >= is_sp * 0.9
    assert 0.5 <= fe_sp <= 1.4
    assert 0.5 <= fe_fu <= 1.4
    # sjeng's SpecLoad share should be visible (re-issued squashed USLs).
    sjeng = result.row_for("sjeng")
    assert sjeng is not None
