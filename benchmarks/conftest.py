"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's figures or tables at a
reduced scale (small app subsets, short instruction windows) so the whole
suite finishes in minutes; the printed tables carry the same rows the
paper reports.  ``python -m repro.experiments <name>`` runs the full-scale
version.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

#: Reduced budgets shared by the benchmark suite.
SPEC_APPS = ["mcf", "sjeng", "libquantum", "hmmer"]
PARSEC_APPS = ["blackscholes", "fluidanimate", "swaptions"]
SPEC_INSTRUCTIONS = 2500
PARSEC_INSTRUCTIONS = 900


@pytest.fixture
def spec_budget():
    return SPEC_APPS, SPEC_INSTRUCTIONS


@pytest.fixture
def parsec_budget():
    return PARSEC_APPS, PARSEC_INSTRUCTIONS


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
