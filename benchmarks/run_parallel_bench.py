"""Measure the supervised parallel sweep against the serial path.

Runs the same batch of figure-4-style cells twice — in-process serial and
under the worker-pool supervisor with ``--jobs N`` — verifies the two
produce identical journal contents (modulo per-attempt wall-clock), and
records the wall times in ``results/BENCH_parallel_sweep.json``.

The speedup scales with real cores: on a single-core machine the workers
time-share one CPU and the pool can only add overhead, which is why the
recorded entry carries ``cpu_count`` — read the ratio against it.

Usage::

    PYTHONPATH=src python benchmarks/run_parallel_bench.py [--jobs 4]
        [--instructions 20000] [--out results/BENCH_parallel_sweep.json]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.configs import ConsistencyModel, Scheme  # noqa: E402
from repro.reliability import (  # noqa: E402
    CellSpec,
    RunEngine,
    RunJournal,
    Supervisor,
)

APPS = ("mcf", "sjeng", "libquantum", "hmmer")
SCHEMES = (Scheme.BASE, Scheme.IS_SPECTRE)


def _specs(instructions):
    return [
        CellSpec(
            "spec", app, scheme, ConsistencyModel.TSO,
            instructions=instructions,
        )
        for app in APPS
        for scheme in SCHEMES
    ]


def _stripped(path):
    with open(path) as handle:
        data = json.load(handle)
    for cell in data["cells"].values():
        for attempt in cell.get("attempts", ()):
            attempt.pop("wall_ms", None)
    data["experiment"] = ""
    return data


def _timed_sweep(specs, journal_path, supervisor=None):
    engine = RunEngine(
        journal=RunJournal(journal_path), supervisor=supervisor
    )
    started = time.perf_counter()
    outcomes = engine.run_specs(specs)
    elapsed = time.perf_counter() - started
    assert all(o.status == "ok" for o in outcomes), outcomes
    return elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument(
        "--out",
        default=os.path.join("results", "BENCH_parallel_sweep.json"),
    )
    args = parser.parse_args(argv)

    specs = _specs(args.instructions)
    with tempfile.TemporaryDirectory() as tmp:
        serial_path = os.path.join(tmp, "serial.json")
        parallel_path = os.path.join(tmp, "parallel.json")
        serial_s = _timed_sweep(specs, serial_path)
        parallel_s = _timed_sweep(
            specs, parallel_path,
            supervisor=Supervisor(jobs=args.jobs, heartbeat_timeout=120.0),
        )
        identical = _stripped(serial_path) == _stripped(parallel_path)

    entry = {
        "benchmark": "parallel_sweep",
        "cells": len(specs),
        "instructions_per_cell": args.instructions,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "journals_identical": identical,
        "note": (
            "speedup is bounded by physical cores; on cpu_count=1 the "
            "pool time-shares one CPU and the ratio reflects pure "
            "supervision overhead"
        ),
    }
    existing = []
    if os.path.exists(args.out):
        with open(args.out) as handle:
            existing = json.load(handle)
    existing.append(entry)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")
    print(json.dumps(entry, indent=2))
    if not identical:
        print("ERROR: serial and parallel journals differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
