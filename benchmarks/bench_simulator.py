"""Simulator throughput benchmarks (simulated instructions per second).

Not a paper artifact — these track the cost of the cycle-level model
itself, per scheme, so performance regressions in the simulator are
visible.
"""

import pytest

from repro import ConsistencyModel, ProcessorConfig, Scheme
from repro.runner import run_spec


@pytest.mark.parametrize(
    "scheme", [Scheme.BASE, Scheme.IS_SPECTRE, Scheme.IS_FUTURE]
)
def test_simulation_throughput(benchmark, scheme):
    config = ProcessorConfig(scheme=scheme, consistency=ConsistencyModel.TSO)

    def run():
        return run_spec("hmmer", config, instructions=1500, warmup=0)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.instructions == 1500


def test_multicore_throughput(benchmark):
    from repro.runner import run_parsec

    config = ProcessorConfig(scheme=Scheme.IS_FUTURE)

    def run():
        return run_parsec("swaptions", config, instructions=400, warmup=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.instructions == 8 * 400
