"""Figure 4 benchmark: normalized SPEC execution time across the five
configurations (reduced app subset).

Checks the paper's shape: Fe-Sp and Fe-Fu cost far more than IS-Sp and
IS-Fu; IS overheads stay within small multiples of the baseline.
"""

from conftest import run_once

from repro.configs import Scheme
from repro.experiments import figure4


def test_figure4_spec_execution_time(benchmark, spec_budget):
    apps, instructions = spec_budget
    result = run_once(
        benchmark,
        figure4.run,
        apps=apps,
        instructions=instructions,
        include_rc=True,
    )
    print()
    print(result.text)

    average = result.row_for("average")
    base, fe_sp, is_sp, fe_fu, is_fu = average[1:6]
    assert base == 1.0
    # Paper shape (TSO): Fe-Sp=1.88 >> IS-Sp=1.076; Fe-Fu=3.46 >> IS-Fu=1.182.
    assert fe_sp > is_sp > 0.9
    assert fe_fu > is_fu > 0.9
    assert fe_fu > fe_sp
    assert is_fu >= is_sp * 0.95
    assert is_sp < fe_sp / 1.3
    assert is_fu < fe_fu / 1.5

    rc_average = result.row_for("RC-average")
    assert rc_average is not None
    assert rc_average[3] < rc_average[2]  # IS-Sp << Fe-Sp under RC too
