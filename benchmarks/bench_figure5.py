"""Figure 5 benchmark: the Spectre v1 PoC latency profile (secret V=84)."""

from conftest import run_once

from repro.experiments import figure5


def test_figure5_spectre_poc(benchmark):
    result = run_once(benchmark, figure5.run, secret=84, trials=2)
    print()
    print(result.text)

    base = result.extras["base"]
    is_sp = result.extras["is_sp"]
    # Base: exactly the secret's line is fast (the paper's dip at 84).
    fast = [v for v in range(256) if base[v] <= 40]
    assert fast == [84]
    assert result.extras["base_guess"] == 84
    # IS-Sp: flat profile, everything at memory latency.
    assert min(is_sp) >= 100
    assert result.extras["is_sp_guess"] is None
