"""Figure 7 benchmark: PARSEC execution time on 8 cores."""

from conftest import run_once

from repro.experiments import figure7


def test_figure7_parsec_execution_time(benchmark, parsec_budget):
    apps, instructions = parsec_budget
    result = run_once(
        benchmark,
        figure7.run,
        apps=apps,
        instructions=instructions,
        include_rc=False,
    )
    print()
    print(result.text)

    average = result.row_for("average")
    base, fe_sp, is_sp, fe_fu, is_fu = average[1:6]
    assert base == 1.0
    # Paper (TSO): IS-Sp=0.992, IS-Fu=1.137, Fe-Sp=1.67, Fe-Fu=2.90.
    assert fe_fu > is_fu
    assert fe_sp > is_sp * 0.9
    assert is_fu < fe_fu / 1.3
    # blackscholes beats Base under InvisiSpec (eviction-squash effect).
    blackscholes = result.row_for("blackscholes")
    assert blackscholes[5] < 1.15  # IS-Fu at or below Base-ish
