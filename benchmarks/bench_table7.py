"""Table VII benchmark: hardware overhead of the InvisiSpec buffers."""

from conftest import run_once

from repro.experiments import table7


def test_table7_hardware_overhead(benchmark):
    result = run_once(benchmark, table7.run)
    print()
    print(result.text)

    area = result.row_for("Area (mm^2)")
    leakage = result.row_for("Leakage power (mW)")
    # Same order of magnitude as the paper's CACTI numbers.
    for column in (1, 2):
        assert 0.005 < float(area[column]) < 0.05
        assert 0.2 < float(leakage[column]) < 1.0
    # Access fits comfortably in one 2 GHz cycle (500 ps).
    access = result.row_for("Access time (ps)")
    assert float(access[1]) < 250
