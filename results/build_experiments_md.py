"""Assemble EXPERIMENTS.md: the generated paper-vs-measured report plus
the ablation/sweep appendices from the saved text renderings."""

import os

from repro.experiments import report

HERE = os.path.dirname(__file__)
ROOT = os.path.dirname(HERE)


def appendix(title, filename, comment=""):
    path = os.path.join(HERE, filename)
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        body = handle.read().rstrip()
    lines = [f"### {title}", ""]
    if comment:
        lines += [comment, ""]
    lines += ["```", body, "```", ""]
    return lines


def main():
    text = report.run(results_dir=HERE)
    extra = ["## Appendices (full outputs)", ""]
    extra += appendix(
        "Appendix A — design-choice ablations", "ablations.txt",
        "Removing the LLC-SB, the V-to-E transformation, or early squash, "
        "and letting the baseline keep loads across L1 evictions.",
    )
    extra += appendix(
        "Appendix B — parameter sensitivity", "sweep.txt",
        "IS-Future overhead vs ROB depth, LQ size, DRAM latency, and L1 "
        "capacity.",
    )
    extra += appendix("Appendix C — Table VI (full)", "table6.txt")
    extra += appendix("Appendix D — Figure 4 (full, per-app)", "figure4.txt")
    extra += appendix("Appendix E — Figure 7 (full, per-app)", "figure7.txt")
    out = os.path.join(ROOT, "EXPERIMENTS.md")
    with open(out, "w") as handle:
        handle.write(text + "\n" + "\n".join(extra) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
