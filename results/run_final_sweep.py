"""Driver producing the full-scale results quoted in EXPERIMENTS.md."""

from repro.experiments import (
    ablations,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    sweep,
    table6,
    table7,
)

STEPS = [
    ("figure4", lambda: figure4.run(instructions=5000, include_rc=True)),
    ("figure6", lambda: figure6.run(instructions=5000, include_rc=True)),
    ("figure5", lambda: figure5.run(trials=3)),
    ("figure7", lambda: figure7.run(instructions=1500, include_rc=True)),
    ("figure8", lambda: figure8.run(instructions=1500, include_rc=True)),
    (
        "table6",
        lambda: table6.run(
            instructions=6000,
            spec_apps=("sjeng", "libquantum", "omnetpp"),
            parsec_apps=("bodytrack", "fluidanimate", "swaptions"),
        ),
    ),
    ("table7", lambda: table7.run()),
    ("ablations", lambda: ablations.run(instructions=4000)),
    ("sweep", lambda: sweep.run(instructions=3000)),
]

import sys

only = set(sys.argv[1:])
for name, step in STEPS:
    if only and name not in only:
        continue
    result = step()
    with open(f"results/{name}.txt", "w") as handle:
        handle.write(result.text + "\n")
    result.save_json(f"results/{name}.json")
    print(name, "done", flush=True)
print("ALL DONE", flush=True)
